//! Input bindings, the compile-time store layout, the live per-run data
//! store, and module outputs.
//!
//! The store is split along the compile-once / run-many seam:
//!
//! * [`StorePlan`] — computed once per `(module, memory plan)` pair: the
//!   flat scalar-slot layout plus each array's window decisions. It holds
//!   no parameter values and can be shared by any number of runs.
//! * [`Store`] — one run's live data, instantiated from the plan against a
//!   concrete [`Inputs`]: evaluated array bounds, allocated (or pooled)
//!   buffers, and bound parameter slots.
//!
//! [`StoreArena`] recycles the per-run storage (buffers, tag tables, the
//! scalar-slot table) between runs of the same plan, so steady-state
//! instantiation is layout evaluation plus `memset`, not allocation.

use crate::ndarray::{ArrayInstance, BufferPool, DimSpec, NdSpec};
use crate::value::{OwnedArray, Value};
use ps_lang::hir::{DataKind, HirModule};
use ps_lang::{DataId, ScalarTy, SubrangeId, Ty};
use ps_scheduler::MemoryPlan;
use ps_support::idx::{Idx, IndexVec};
use ps_support::{FxHashMap, Symbol};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Parameter bindings supplied by the caller.
#[derive(Clone, Debug, Default)]
pub struct Inputs {
    scalars: FxHashMap<Symbol, Value>,
    arrays: FxHashMap<Symbol, OwnedArray>,
}

impl Inputs {
    pub fn new() -> Inputs {
        Inputs::default()
    }

    pub fn set_int(mut self, name: &str, v: i64) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Int(v));
        self
    }

    pub fn set_real(mut self, name: &str, v: f64) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Real(v));
        self
    }

    pub fn set_bool(mut self, name: &str, v: bool) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Bool(v));
        self
    }

    pub fn set_array(mut self, name: &str, a: OwnedArray) -> Inputs {
        self.arrays.insert(Symbol::intern(name), a);
        self
    }

    pub fn scalar(&self, name: Symbol) -> Option<Value> {
        self.scalars.get(&name).copied()
    }

    pub fn array(&self, name: Symbol) -> Option<&OwnedArray> {
        self.arrays.get(&name)
    }

    /// The affine-parameter environment (scalar ints only).
    pub fn param_env(&self) -> FxHashMap<Symbol, i64> {
        self.scalars
            .iter()
            .filter_map(|(&s, v)| match v {
                Value::Int(i) => Some((s, *i)),
                _ => None,
            })
            .collect()
    }
}

/// Module results returned by the interpreter or oracle.
#[derive(Clone, Debug, Default)]
pub struct Outputs {
    pub scalars: FxHashMap<String, Value>,
    pub arrays: FxHashMap<String, OwnedArray>,
}

impl Outputs {
    pub fn array(&self, name: &str) -> &OwnedArray {
        &self.arrays[name]
    }

    pub fn scalar(&self, name: &str) -> Value {
        self.scalars[name]
    }
}

/// Setup failure (missing input, unevaluable bound, shape mismatch).
#[derive(Clone, Debug)]
pub struct RuntimeError(pub String);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RuntimeError {}

/// One lock-free scalar cell: a type tag plus the value bits.
///
/// The tag is stored *after* the bits (both release), and read *before*
/// them (both acquire), so a reader that observes a set tag also observes
/// the matching bits. Equations are single-assignment, so each cell is
/// written at most once per execution; writes happen outside parallel
/// regions and are made visible to workers by the executor's region
/// publish/complete synchronization.
#[derive(Default)]
struct ScalarSlot {
    /// 0 = unset, 1 = int, 2 = real, 3 = bool.
    tag: AtomicU8,
    bits: AtomicU64,
}

impl ScalarSlot {
    /// Return the slot to the "never written" state (pooled reuse).
    fn reset(&self) {
        self.tag.store(0, Ordering::Relaxed);
        self.bits.store(0, Ordering::Relaxed);
    }

    fn write(&self, v: Value) {
        let (tag, bits) = match v {
            Value::Int(i) => (1, i as u64),
            Value::Real(r) => (2, r.to_bits()),
            Value::Bool(b) => (3, b as u64),
        };
        self.bits.store(bits, Ordering::Release);
        self.tag.store(tag, Ordering::Release);
    }

    fn read(&self) -> Option<Value> {
        let tag = self.tag.load(Ordering::Acquire);
        let bits = self.bits.load(Ordering::Acquire);
        match tag {
            0 => None,
            1 => Some(Value::Int(bits as i64)),
            2 => Some(Value::Real(f64::from_bits(bits))),
            3 => Some(Value::Bool(bits != 0)),
            _ => unreachable!("corrupt scalar tag {tag}"),
        }
    }
}

/// Evaluate one subrange's bounds, naming the bound that failed. The
/// single source of truth for "cannot evaluate bound" errors — the
/// instantiate fast path, [`Store::bounds_of`], and
/// [`Store::subrange_bounds`] all route their failures through here.
fn eval_subrange(
    module: &HirModule,
    params: &FxHashMap<Symbol, i64>,
    sr: SubrangeId,
) -> Result<(i64, i64), RuntimeError> {
    let s = &module.subranges[sr];
    let lo =
        s.lo.eval(params)
            .ok_or_else(|| RuntimeError(format!("cannot evaluate bound {}", s.lo)))?;
    let hi =
        s.hi.eval(params)
            .ok_or_else(|| RuntimeError(format!("cannot evaluate bound {}", s.hi)))?;
    Ok((lo, hi))
}

/// The "declared dimension is empty" error shared by the array paths.
fn empty_dim_error(module: &HirModule, id: DataId, lo: i64, hi: i64) -> RuntimeError {
    RuntimeError(format!(
        "empty dimension {lo}..{hi} for `{}`",
        module.data[id].name
    ))
}

/// Recycled per-run storage: array buffers, checker tag tables, and
/// scalar-slot tables. One arena serves repeated [`StorePlan::instantiate`]
/// calls; everything it holds is reset before reuse.
#[derive(Default)]
pub struct StoreArena {
    pub(crate) bufs: BufferPool,
    slots: Vec<Box<[ScalarSlot]>>,
}

/// How many spare scalar-slot tables to keep (they are all the same size
/// for one plan; more than a few only helps heavily concurrent runs).
const SLOT_POOL_CAP: usize = 16;

/// The immutable store layout for one `(module, memory plan)` pair.
///
/// Holds everything about storage that does *not* depend on parameter
/// values: the flat scalar-slot layout and each array dimension's window
/// decision. Instantiating it against concrete [`Inputs`] yields a
/// [`Store`]; the bounds themselves (`0..M+1`) are evaluated per run.
pub struct StorePlan<'m> {
    pub module: &'m HirModule,
    /// Slot `i` of item `d` lives at `scalar_base[d] + i` (field 0 is the
    /// scalar itself; record fields follow). Shared with every [`Store`]
    /// instantiated from this plan.
    scalar_base: Arc<[u32]>,
    n_slots: u32,
    /// Per-array window decisions copied out of the [`MemoryPlan`]
    /// (empty for scalars).
    windows: IndexVec<DataId, Vec<Option<i64>>>,
}

impl<'m> StorePlan<'m> {
    /// Lay out the scalar slot table and capture window decisions. One
    /// slot per scalar item plus one per record field (arrays get an
    /// unused slot; the waste is a few bytes and keeps the base map a
    /// plain vector).
    pub fn new(module: &'m HirModule, plan: &MemoryPlan) -> StorePlan<'m> {
        let mut scalar_base = Vec::with_capacity(module.data.len());
        let mut windows: IndexVec<DataId, Vec<Option<i64>>> =
            IndexVec::with_capacity(module.data.len());
        let mut next_slot = 0u32;
        for (id, item) in module.data.iter_enumerated() {
            scalar_base.push(next_slot);
            let fields = match &item.ty {
                Ty::Record(rid) => module.records[*rid].fields.len() as u32,
                _ => 0,
            };
            next_slot += 1 + fields;
            windows.push((0..item.dims().len()).map(|d| plan.window(id, d)).collect());
        }
        StorePlan {
            module,
            scalar_base: scalar_base.into(),
            n_slots: next_slot,
            windows,
        }
    }

    /// Flat index of scalar `field` of `id` in the slot table.
    pub(crate) fn slot_index(&self, id: DataId, field: usize) -> usize {
        self.scalar_base[id.index()] as usize + field
    }

    /// Total number of scalar slots (for tape validation).
    pub(crate) fn slot_count(&self) -> usize {
        self.n_slots as usize
    }

    /// The concrete layout of array `id` under `params`: declared bounds
    /// evaluated, window decisions applied. Used both to allocate the
    /// instance and to specialize compiled address arithmetic, so the two
    /// agree by construction.
    pub(crate) fn nd_spec(
        &self,
        id: DataId,
        params: &FxHashMap<Symbol, i64>,
    ) -> Result<NdSpec, RuntimeError> {
        let bounds = Store::bounds_of(self.module, params, id)?;
        Ok(NdSpec {
            dims: bounds
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| DimSpec {
                    lo,
                    hi,
                    window: self.windows[id][d],
                })
                .collect(),
        })
    }

    /// Whether any dimension of array `id` received a window decision
    /// (used by the static analysis: windowed arrays never elide their
    /// runtime tags — the tags also catch window evictions).
    pub(crate) fn is_windowed(&self, id: DataId) -> bool {
        self.windows[id].iter().any(|w| w.is_some())
    }

    /// Bind `inputs` and allocate every array, drawing reusable storage
    /// from `arena`. This is the cheap per-run half of the old
    /// `Store::build`.
    pub fn instantiate(
        &self,
        inputs: &Inputs,
        check_writes: bool,
        arena: &mut StoreArena,
    ) -> Result<Store<'m>, RuntimeError> {
        self.instantiate_masked(inputs, check_writes, None, arena)
    }

    /// [`StorePlan::instantiate`] with a per-array tag-elision mask
    /// (indexed by `DataId`): under `check_writes`, arrays the static
    /// analysis fully verified skip tag allocation (and the O(n) per-run
    /// tag reset) entirely.
    pub(crate) fn instantiate_masked(
        &self,
        inputs: &Inputs,
        check_writes: bool,
        verified: Option<&[bool]>,
        arena: &mut StoreArena,
    ) -> Result<Store<'m>, RuntimeError> {
        let module = self.module;
        let params = inputs.param_env();
        // Evaluate every subrange once: loop headers and array bounds then
        // read a table instead of re-evaluating affine forms per use.
        let subrange_bounds: IndexVec<SubrangeId, Option<(i64, i64)>> = module
            .subranges
            .iter()
            .map(|s| Some((s.lo.eval(&params)?, s.hi.eval(&params)?)))
            .collect();
        // Per-dimension bounds lookup: table fast path, shared error path.
        let dim_bounds = |id: DataId, sr: SubrangeId| -> Result<(i64, i64), RuntimeError> {
            let (lo, hi) = match subrange_bounds[sr] {
                Some(b) => b,
                None => eval_subrange(module, &params, sr)?,
            };
            if hi < lo {
                return Err(empty_dim_error(module, id, lo, hi));
            }
            Ok((lo, hi))
        };
        let mut arrays: IndexVec<DataId, Option<ArrayInstance>> =
            IndexVec::with_capacity(module.data.len());

        let scalar_slots: Box<[ScalarSlot]> = match arena
            .slots
            .iter()
            .position(|s| s.len() == self.n_slots as usize)
        {
            Some(ix) => {
                let s = arena.slots.swap_remove(ix);
                for slot in s.iter() {
                    slot.reset();
                }
                s
            }
            None => (0..self.n_slots).map(|_| ScalarSlot::default()).collect(),
        };
        let write_param = |id: DataId, v: Value| {
            scalar_slots[self.scalar_base[id.index()] as usize].write(v);
        };

        for (id, item) in module.data.iter_enumerated() {
            arrays.push(None);
            match item.kind {
                DataKind::Param => {
                    if item.is_array() {
                        let owned = inputs.array(item.name).ok_or_else(|| {
                            RuntimeError(format!("missing input array `{}`", item.name))
                        })?;
                        // Validate the declared shape (allocation-free in
                        // the match case).
                        let dims = item.dims();
                        let mut ok = owned.dims.len() == dims.len();
                        for (k, &sr) in dims.iter().enumerate() {
                            if !ok {
                                break;
                            }
                            ok = owned.dims[k] == dim_bounds(id, sr)?;
                        }
                        if !ok {
                            let declared: Vec<(i64, i64)> = dims
                                .iter()
                                .map(|&sr| dim_bounds(id, sr))
                                .collect::<Result<_, _>>()?;
                            return Err(RuntimeError(format!(
                                "input `{}` has dims {:?}, declared {:?}",
                                item.name, owned.dims, declared
                            )));
                        }
                        arrays[id] = Some(ArrayInstance::from_owned_pooled(owned, &mut arena.bufs));
                    } else {
                        let v = inputs.scalar(item.name).ok_or_else(|| {
                            RuntimeError(format!("missing input `{}`", item.name))
                        })?;
                        // Widen ints handed to real params.
                        let v = match (&item.ty, v) {
                            (Ty::Scalar(ScalarTy::Real), Value::Int(i)) => Value::Real(i as f64),
                            _ => v,
                        };
                        write_param(id, v);
                    }
                }
                DataKind::Local | DataKind::Result => {
                    if item.is_array() {
                        let mut dims = arena.bufs.take_dims();
                        for (d, &sr) in item.dims().iter().enumerate() {
                            let (lo, hi) = dim_bounds(id, sr)?;
                            dims.push(DimSpec {
                                lo,
                                hi,
                                window: self.windows[id][d],
                            });
                        }
                        let elem = item.elem_scalar().ok_or_else(|| {
                            RuntimeError(format!("`{}` has no scalar element", item.name))
                        })?;
                        let elided = verified.is_some_and(|m| m[id.index()]);
                        arrays[id] = Some(ArrayInstance::new_pooled(
                            NdSpec { dims },
                            elem,
                            check_writes && !elided,
                            &mut arena.bufs,
                        ));
                    }
                }
            }
        }

        Ok(Store {
            module,
            params,
            subrange_bounds,
            arrays,
            scalar_base: Arc::clone(&self.scalar_base),
            scalar_slots,
        })
    }
}

/// The live data store for one module execution.
pub struct Store<'m> {
    pub module: &'m HirModule,
    pub params: FxHashMap<Symbol, i64>,
    /// Every subrange's `(lo, hi)` under this run's parameters, evaluated
    /// once at instantiation; loop headers read the table instead of
    /// re-evaluating affine forms (`None`: a bound named a missing
    /// parameter).
    subrange_bounds: IndexVec<SubrangeId, Option<(i64, i64)>>,
    /// Dense per-item array table (`None` for scalars): lookups on the hot
    /// path are a single indexed load, no hashing.
    arrays: IndexVec<DataId, Option<ArrayInstance>>,
    /// Flat scalar slots, one per `(data item, field)` pair. Guards in hot
    /// DOALL bodies read parameters like `M`/`maxK` millions of times, so
    /// every read is two atomic loads — no lock, no hashing. The layout is
    /// the plan's ([`StorePlan::slot_index`]).
    scalar_base: Arc<[u32]>,
    scalar_slots: Box<[ScalarSlot]>,
}

impl<'m> Store<'m> {
    /// Allocate every array of `module` per the memory plan, binding
    /// parameters from `inputs`. One-shot convenience over
    /// [`StorePlan::instantiate`] (no storage reuse).
    pub fn build(
        module: &'m HirModule,
        plan: &MemoryPlan,
        inputs: &Inputs,
        check_writes: bool,
    ) -> Result<Store<'m>, RuntimeError> {
        StorePlan::new(module, plan).instantiate(inputs, check_writes, &mut StoreArena::default())
    }

    /// Evaluate the declared inclusive bounds of an array.
    pub fn bounds_of(
        module: &HirModule,
        params: &FxHashMap<Symbol, i64>,
        id: DataId,
    ) -> Result<Vec<(i64, i64)>, RuntimeError> {
        module.data[id]
            .dims()
            .iter()
            .map(|&sr| {
                let (lo, hi) = eval_subrange(module, params, sr)?;
                if hi < lo {
                    return Err(empty_dim_error(module, id, lo, hi));
                }
                Ok((lo, hi))
            })
            .collect()
    }

    /// The evaluated `(lo, hi)` of a subrange — a table load, no affine
    /// evaluation on the loop-header path.
    pub fn subrange_bounds(&self, sr: SubrangeId) -> (i64, i64) {
        self.subrange_bounds[sr].unwrap_or_else(|| {
            match eval_subrange(self.module, &self.params, sr) {
                Ok(b) => b,
                Err(e) => panic!("{e}"),
            }
        })
    }

    pub fn array(&self, id: DataId) -> &ArrayInstance {
        self.arrays[id]
            .as_ref()
            .unwrap_or_else(|| panic!("array `{}` not allocated", self.module.data[id].name))
    }

    /// Flat index of scalar `field` of `id` in the slot table. The compiled
    /// engine resolves slots once at lowering time and reads them by index.
    pub(crate) fn slot_index(&self, id: DataId, field: usize) -> usize {
        self.scalar_base[id.index()] as usize + field
    }

    /// Read a slot by flat index (`None` when never written).
    pub(crate) fn read_slot(&self, slot: usize) -> Option<Value> {
        self.scalar_slots[slot].read()
    }

    /// Write a slot by flat index.
    pub(crate) fn write_slot(&self, slot: usize, v: Value) {
        self.scalar_slots[slot].write(v);
    }

    /// Read scalar `field` of `id` — two atomic loads, no lock.
    pub fn read_scalar(&self, id: DataId, field: usize) -> Value {
        self.read_slot(self.slot_index(id, field))
            .unwrap_or_else(|| {
                panic!(
                    "scalar `{}` read before definition",
                    self.module.data[id].name
                )
            })
    }

    pub fn write_scalar(&self, id: DataId, field: usize, v: Value) {
        self.write_slot(self.slot_index(id, field), v);
    }

    /// The current values of the scalar parameters in `table` order (the
    /// compiled engine's parameter-register preload source).
    pub(crate) fn param_values(&self, table: &[DataId]) -> Vec<Value> {
        table.iter().map(|&d| self.read_scalar(d, 0)).collect()
    }

    /// Extract results into [`Outputs`].
    pub fn into_outputs(self) -> Outputs {
        self.finish(None)
    }

    /// Extract results and recycle the remaining storage into `arena` for
    /// the next run.
    pub(crate) fn into_outputs_into(self, arena: &mut StoreArena) -> Outputs {
        self.finish(Some(arena))
    }

    fn finish(mut self, arena: Option<&mut StoreArena>) -> Outputs {
        let module = self.module;
        let mut out = Outputs::default();
        for &id in &module.results {
            let item = &module.data[id];
            if item.is_array() {
                let inst = self.arrays[id].take().expect("result array was allocated");
                out.arrays
                    .insert(item.name.to_string(), inst.to_owned_array());
            } else {
                let v = self.read_scalar(id, 0);
                out.scalars.insert(item.name.to_string(), v);
            }
        }
        if let Some(arena) = arena {
            // Result arrays left with the caller; everything else (local
            // and input buffers, the slot table) feeds the next run.
            for opt in self.arrays.iter_mut() {
                if let Some(inst) = opt.take() {
                    inst.recycle(&mut arena.bufs);
                }
            }
            if arena.slots.len() < SLOT_POOL_CAP {
                arena.slots.push(self.scalar_slots);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;

    #[test]
    fn inputs_builder_and_env() {
        let inputs = Inputs::new()
            .set_int("n", 5)
            .set_real("x", 1.5)
            .set_bool("flag", true);
        assert_eq!(inputs.scalar(Symbol::intern("n")), Some(Value::Int(5)));
        let env = inputs.param_env();
        assert_eq!(env.get(&Symbol::intern("n")), Some(&5));
        assert!(!env.contains_key(&Symbol::intern("x")), "reals not affine");
    }

    #[test]
    fn scalar_slots_round_trip_all_types() {
        let s = ScalarSlot::default();
        assert_eq!(s.read(), None, "unset slot reads as None");
        s.write(Value::Int(-42));
        assert_eq!(s.read(), Some(Value::Int(-42)));
        s.write(Value::Real(-0.5));
        assert_eq!(s.read(), Some(Value::Real(-0.5)));
        s.write(Value::Bool(true));
        assert_eq!(s.read(), Some(Value::Bool(true)));
        // NaN bits survive the round trip (no Value comparison: NaN != NaN).
        s.write(Value::Real(f64::NAN));
        match s.read() {
            Some(Value::Real(r)) => assert!(r.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn store_allocates_and_validates() {
        let m = frontend(
            "T: module (n: int; init: array[1..n] of real): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = init[1];
                a[K] = a[K-1] + 1.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let plan = MemoryPlan::new();
        let inputs = Inputs::new()
            .set_int("n", 4)
            .set_array("init", OwnedArray::real(vec![(1, 4)], vec![1.0; 4]));
        let store = Store::build(&m, &plan, &inputs, false).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(store.array(a).spec.physical_len(), 4);

        // Shape mismatch rejected.
        let bad = Inputs::new()
            .set_int("n", 4)
            .set_array("init", OwnedArray::real(vec![(1, 3)], vec![1.0; 3]));
        assert!(Store::build(&m, &plan, &bad, false).is_err());

        // Missing scalar rejected.
        let missing = Inputs::new().set_array("init", OwnedArray::real(vec![(1, 4)], vec![1.0; 4]));
        assert!(Store::build(&m, &plan, &missing, false).is_err());
    }
}
