//! Scalar values and owned array results.

use std::fmt;

/// A runtime scalar. Enumeration values and characters are carried as
/// integers (their ordinal / code point), mirroring the generated C.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    Int(i64),
    Real(f64),
    Bool(bool),
}

impl Value {
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    pub fn as_real(&self) -> f64 {
        match self {
            Value::Real(v) => *v,
            other => panic!("expected real, got {other:?}"),
        }
    }

    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Numeric coercion used by comparisons and mixed arithmetic (the
    /// checker inserts explicit casts, so this only handles exact matches
    /// plus the int→real widening the casts produce).
    pub fn widen_real(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Real(v) => *v,
            Value::Bool(_) => panic!("cannot widen bool to real"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A dense owned array with inclusive per-dimension bounds, used for module
/// inputs and outputs.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedArray {
    /// Inclusive `(lo, hi)` bounds per dimension.
    pub dims: Vec<(i64, i64)>,
    /// Row-major data; `len == Π (hi-lo+1)`.
    pub data: OwnedBuffer,
}

/// Element storage for [`OwnedArray`].
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedBuffer {
    Real(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
}

impl OwnedArray {
    pub fn real(dims: Vec<(i64, i64)>, data: Vec<f64>) -> OwnedArray {
        let arr = OwnedArray {
            dims,
            data: OwnedBuffer::Real(data),
        };
        arr.check_len();
        arr
    }

    pub fn int(dims: Vec<(i64, i64)>, data: Vec<i64>) -> OwnedArray {
        let arr = OwnedArray {
            dims,
            data: OwnedBuffer::Int(data),
        };
        arr.check_len();
        arr
    }

    fn check_len(&self) {
        assert_eq!(
            self.len(),
            self.element_count(),
            "data length must match dims {:?}",
            self.dims
        );
    }

    pub fn element_count(&self) -> usize {
        self.dims
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0) as usize)
            .product()
    }

    pub fn len(&self) -> usize {
        match &self.data {
            OwnedBuffer::Real(v) => v.len(),
            OwnedBuffer::Int(v) => v.len(),
            OwnedBuffer::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn flat(&self, index: &[i64]) -> usize {
        assert_eq!(index.len(), self.dims.len(), "rank mismatch");
        let mut off = 0usize;
        for (&(lo, hi), &i) in self.dims.iter().zip(index) {
            assert!(i >= lo && i <= hi, "index {i} outside {lo}..{hi}");
            off = off * (hi - lo + 1) as usize + (i - lo) as usize;
        }
        off
    }

    /// Read one element.
    pub fn get(&self, index: &[i64]) -> Value {
        let off = self.flat(index);
        match &self.data {
            OwnedBuffer::Real(v) => Value::Real(v[off]),
            OwnedBuffer::Int(v) => Value::Int(v[off]),
            OwnedBuffer::Bool(v) => Value::Bool(v[off]),
        }
    }

    /// Maximum absolute difference against another real array.
    pub fn max_abs_diff(&self, other: &OwnedArray) -> f64 {
        match (&self.data, &other.data) {
            (OwnedBuffer::Real(a), OwnedBuffer::Real(b)) => {
                assert_eq!(a.len(), b.len(), "shape mismatch");
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max)
            }
            _ => panic!("max_abs_diff requires real arrays"),
        }
    }

    /// The real data, when real-typed.
    pub fn as_real_slice(&self) -> &[f64] {
        match &self.data {
            OwnedBuffer::Real(v) => v,
            other => panic!("expected real array, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_respects_bounds() {
        let a = OwnedArray::real(vec![(0, 1), (10, 12)], (0..6).map(|x| x as f64).collect());
        assert_eq!(a.get(&[0, 10]), Value::Real(0.0));
        assert_eq!(a.get(&[0, 12]), Value::Real(2.0));
        assert_eq!(a.get(&[1, 10]), Value::Real(3.0));
        assert_eq!(a.get(&[1, 12]), Value::Real(5.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_panics() {
        let a = OwnedArray::real(vec![(0, 1)], vec![1.0, 2.0]);
        a.get(&[2]);
    }

    #[test]
    fn diff_metric() {
        let a = OwnedArray::real(vec![(1, 3)], vec![1.0, 2.0, 3.0]);
        let b = OwnedArray::real(vec![(1, 3)], vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), 3);
        assert_eq!(Value::Real(2.5).as_real(), 2.5);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Int(2).widen_real(), 2.0);
        assert_eq!(format!("{}", Value::Int(7)), "7");
    }
}
