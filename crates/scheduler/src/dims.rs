//! Dimension matching: step 2–3 of Schedule-Component.
//!
//! A *dimension* of a component is an equivalence between one index variable
//! of each equation node and one dimension position of each data node,
//! induced by the subscript structure. The paper states the requirement as:
//!
//! > "verify that the subrange associated with that dimension appears in a
//! > consistent position in each node of the component, and that the only
//! > subscript expressions used in that dimension are either `I` or
//! > `I - constant`."
//!
//! Starting from a seed `(equation, index variable)`, [`try_match`]
//! propagates the assignment across def and read edges to a fixed point,
//! rejecting the candidate on any conflict (the paper's footnote example
//! `A[I,J] = A[I,J-1] + A[J,I]` fails here: `I` would need to sit at both
//! position 0 and position 1 of `A`).

use crate::schedule::SchedState;
use ps_depgraph::{DepGraph, EdgeKind, SubscriptForm};
use ps_graph::{EdgeId, NodeId};
use ps_lang::hir::{HirModule, LhsSub};
use ps_lang::{IvId, SubrangeId};
use ps_support::{FxHashMap, FxHashSet};

/// A verified dimension assignment for a component.
#[derive(Clone, Debug)]
pub struct DimMatch {
    /// Matched index variable per equation node.
    pub eq_iv: FxHashMap<NodeId, IvId>,
    /// Matched dimension position per data node.
    pub data_pos: FxHashMap<NodeId, usize>,
    /// Read edges with `I - constant` form at the matched dimension — the
    /// edges Schedule-Component deletes (step 4).
    pub deletable: Vec<EdgeId>,
    /// Display name (the seed index variable's name).
    pub name: String,
    /// The subrange the generated loop iterates over.
    pub subrange: SubrangeId,
}

/// Attempt to extend the seed `(seed_eq_node, seed_iv)` to a consistent
/// dimension over all of `comp`. Returns `None` when the paper's step-3
/// verification fails.
pub fn try_match(
    module: &HirModule,
    dg: &DepGraph,
    state: &SchedState,
    comp: &FxHashSet<NodeId>,
    seed_eq_node: NodeId,
    seed_iv: IvId,
) -> Option<DimMatch> {
    let mut eq_iv: FxHashMap<NodeId, IvId> = FxHashMap::default();
    let mut data_pos: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut work: Vec<NodeId> = vec![seed_eq_node];
    eq_iv.insert(seed_eq_node, seed_iv);

    // Fixed-point propagation over the component's active edges.
    while let Some(n) = work.pop() {
        if dg.is_equation(n) {
            let v = eq_iv[&n];
            let eq_id = match dg.node_kind(n) {
                ps_depgraph::DepNodeKind::Equation(e) => e,
                _ => unreachable!(),
            };
            let eq = &module.equations[eq_id];

            // Def edge: the LHS dimension bound to v fixes the position of
            // the defined array.
            let lhs_node = dg.data_node(eq.lhs);
            if comp.contains(&lhs_node) {
                let pos = eq
                    .lhs_subs
                    .iter()
                    .position(|s| matches!(s, LhsSub::Var(iv) if *iv == v))?;
                if !assign_data(&mut data_pos, &mut work, lhs_node, pos) {
                    return None;
                }
            }

            // Read edges into this equation: labels using v fix the source
            // array's position.
            for e in state.graph.in_edges(n) {
                if state.graph.edge(e).kind != EdgeKind::Read {
                    continue;
                }
                let src = state.graph.edge_source(e);
                if !comp.contains(&src) {
                    continue;
                }
                let labels = &state.graph.edge(e).labels;
                let mut pos_for_v: Option<usize> = None;
                for (d, l) in labels.iter().enumerate() {
                    if l.iv == Some(v) && pos_for_v.replace(d).is_some() {
                        // v used at two positions of the same reference.
                        return None;
                    }
                }
                if let Some(d) = pos_for_v {
                    if !assign_data(&mut data_pos, &mut work, src, d) {
                        return None;
                    }
                }
            }
        } else {
            // Data node with a known position: every in-component reference
            // at that position must be `I` / `I - constant` over a single
            // index variable of the target equation; every in-component
            // definition must bind a variable there.
            let d = data_pos[&n];
            for e in state.graph.out_edges(n) {
                if state.graph.edge(e).kind != EdgeKind::Read {
                    continue;
                }
                let tgt = state.graph.edge_target(e);
                if !comp.contains(&tgt) {
                    continue;
                }
                let l = state.graph.edge(e).labels.get(d)?;
                match l.form {
                    SubscriptForm::Identity | SubscriptForm::OffsetBack => {
                        let v = l.iv.expect("identity/offset labels carry an iv");
                        if !assign_eq(&mut eq_iv, &mut work, tgt, v) {
                            return None;
                        }
                    }
                    // `I + constant`, general affine, dynamic, or constant:
                    // the paper's step-3 verification fails.
                    SubscriptForm::Other | SubscriptForm::Constant => return None,
                }
            }
            for e in state.graph.in_edges(n) {
                if state.graph.edge(e).kind != EdgeKind::Def {
                    continue;
                }
                let src = state.graph.edge_source(e);
                if !comp.contains(&src) {
                    continue;
                }
                let eq_id = match dg.node_kind(src) {
                    ps_depgraph::DepNodeKind::Equation(eq) => eq,
                    _ => continue,
                };
                match module.equations[eq_id].lhs_subs.get(d) {
                    Some(LhsSub::Var(v)) => {
                        if !assign_eq(&mut eq_iv, &mut work, src, *v) {
                            return None;
                        }
                    }
                    // A constant plane at the scheduled dimension inside the
                    // recursion: not schedulable in this dimension.
                    _ => return None,
                }
            }
        }
    }

    // Every node of the component must participate in the dimension.
    for &n in comp {
        if dg.is_equation(n) {
            if !eq_iv.contains_key(&n) {
                return None;
            }
        } else if !data_pos.contains_key(&n) {
            return None;
        }
    }

    // The matched variables must be unscheduled, and all equation loops must
    // range over provably identical subranges.
    let seed_subrange = iv_subrange(module, dg, seed_eq_node, seed_iv);
    for (&n, &v) in &eq_iv {
        if state.is_eq_scheduled(n, v) {
            return None;
        }
        let sr = iv_subrange(module, dg, n, v);
        if sr != seed_subrange
            && !module.subranges[sr].same_bounds(&module.subranges[seed_subrange])
        {
            return None;
        }
    }
    for (&n, &d) in &data_pos {
        if state.is_data_scheduled(n, d) {
            return None;
        }
    }

    // Collect the deletable `I - constant` edges (step 4): in-component read
    // edges whose label at the source's matched position is OffsetBack.
    let mut deletable = Vec::new();
    for (&src, &d) in &data_pos {
        for e in state.graph.out_edges(src) {
            if state.graph.edge(e).kind != EdgeKind::Read {
                continue;
            }
            let tgt = state.graph.edge_target(e);
            if !comp.contains(&tgt) {
                continue;
            }
            if state.graph.edge(e).labels[d].form == SubscriptForm::OffsetBack {
                deletable.push(e);
            }
        }
    }

    let name = eq_iv_name(module, dg, seed_eq_node, seed_iv);
    Some(DimMatch {
        eq_iv,
        data_pos,
        deletable,
        name,
        subrange: seed_subrange,
    })
}

fn assign_data(
    data_pos: &mut FxHashMap<NodeId, usize>,
    work: &mut Vec<NodeId>,
    node: NodeId,
    pos: usize,
) -> bool {
    match data_pos.get(&node) {
        Some(&existing) => existing == pos,
        None => {
            data_pos.insert(node, pos);
            work.push(node);
            true
        }
    }
}

fn assign_eq(
    eq_iv: &mut FxHashMap<NodeId, IvId>,
    work: &mut Vec<NodeId>,
    node: NodeId,
    iv: IvId,
) -> bool {
    match eq_iv.get(&node) {
        Some(&existing) => existing == iv,
        None => {
            eq_iv.insert(node, iv);
            work.push(node);
            true
        }
    }
}

fn iv_subrange(module: &HirModule, dg: &DepGraph, node: NodeId, iv: IvId) -> SubrangeId {
    match dg.node_kind(node) {
        ps_depgraph::DepNodeKind::Equation(eq) => module.equations[eq].ivs[iv].subrange,
        _ => unreachable!("iv lookup on data node"),
    }
}

fn eq_iv_name(module: &HirModule, dg: &DepGraph, node: NodeId, iv: IvId) -> String {
    match dg.node_kind(node) {
        ps_depgraph::DepNodeKind::Equation(eq) => module.equations[eq].ivs[iv].name.to_string(),
        _ => unreachable!(),
    }
}
