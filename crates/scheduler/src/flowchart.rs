//! Flowchart descriptors (paper Figure 4).
//!
//! > "A descriptor may indicate either a dependency graph node or a subrange
//! > type. [...] The presence of the latter means that a for loop over the
//! > indicated subrange is to be generated. [...] Thus the flowchart is a
//! > recursive structure which reflects the nesting structure of the
//! > generated program."
//!
//! In practice only *equation* nodes survive into flowcharts (a component
//! consisting of one data node schedules to null), so [`Descriptor`] carries
//! equations, loops, and — for the windowed hyperplane mode — the *drain*
//! step that "unrotates" the transformed array back into the module result
//! while the wavefront passes (Section 4's preferred implementation choice).

use ps_lang::bounds::Affine;
use ps_lang::{DataId, EqId, IvId, SubrangeId};

/// Whether a loop is iterative (`DO`) or concurrent (`DOALL`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Iterative: recursive (`I - constant`) edges were deleted when this
    /// dimension was scheduled, so iterations must run in order.
    Do,
    /// Concurrent: no recursive edges in this dimension.
    Doall,
}

impl LoopKind {
    pub fn keyword(&self) -> &'static str {
        match self {
            LoopKind::Do => "DO",
            LoopKind::Doall => "DOALL",
        }
    }
}

/// A loop over a subrange, containing a nested flowchart.
#[derive(Clone, Debug)]
pub struct LoopDescriptor {
    pub kind: LoopKind,
    /// The subrange iterated over (bounds live in the `HirModule`).
    pub subrange: SubrangeId,
    /// Display name for rendering (`K`, `I`, `J`).
    pub name: String,
    /// For each equation scheduled inside this loop, the index variable of
    /// that equation bound to the loop counter. The runtime uses this to
    /// build the index environment; the paper's compiler does the same
    /// implicitly by reusing the subrange name as the C loop variable.
    pub bindings: Vec<(EqId, IvId)>,
    /// Loop body.
    pub body: Vec<Descriptor>,
}

/// The drain ("unrotate") step for the windowed hyperplane transform: while
/// the outer wavefront loop runs, copy finished elements of the transformed
/// array back into the result array.
#[derive(Clone, Debug)]
pub struct DrainSpec {
    /// Destination (the original result array), rank `n - 1`.
    pub dst: DataId,
    /// Source: the transformed (windowed) array, rank `n`, time-major.
    pub src: DataId,
    /// Inner loop subranges over the `n - 1` non-time transformed dims.
    pub inner: Vec<SubrangeId>,
    /// Inverse coordinate transform: for each *original* dimension, the
    /// affine row `(coeffs over [t, inner...], params-const)` giving the
    /// original index from transformed loop indices.
    pub original: Vec<(Vec<i64>, Affine)>,
    /// Original dimension that must sit at its upper bound for the element
    /// to be final (the `K = maxK` plane of Relaxation).
    pub drain_dim: usize,
    /// Declared bounds of each original dimension, for the in-domain guard.
    pub original_bounds: Vec<(Affine, Affine)>,
    /// The iv of the enclosing time loop in `src`'s defining equation —
    /// used only for rendering.
    pub time_name: String,
}

/// One flowchart entry.
#[derive(Clone, Debug)]
pub enum Descriptor {
    /// Emit code for this equation at the current loop nesting.
    Equation(EqId),
    /// Generate a `for` loop over a subrange.
    Loop(LoopDescriptor),
    /// Windowed-hyperplane drain step (see [`DrainSpec`]).
    Drain(Box<DrainSpec>),
}

/// A scheduled flowchart: an ordered list of descriptors.
#[derive(Clone, Debug, Default)]
pub struct Flowchart {
    pub items: Vec<Descriptor>,
}

impl Flowchart {
    pub fn new() -> Flowchart {
        Flowchart::default()
    }

    pub fn push(&mut self, d: Descriptor) {
        self.items.push(d);
    }

    /// Concatenate another flowchart ("concatenate the result returned by
    /// Schedule-Component onto the flowchart").
    pub fn concat(&mut self, other: Flowchart) {
        self.items.extend(other.items);
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All equations in execution order.
    pub fn equations(&self) -> Vec<EqId> {
        let mut out = Vec::new();
        fn go(items: &[Descriptor], out: &mut Vec<EqId>) {
            for d in items {
                match d {
                    Descriptor::Equation(e) => out.push(*e),
                    Descriptor::Loop(l) => go(&l.body, out),
                    Descriptor::Drain(_) => {}
                }
            }
        }
        go(&self.items, &mut out);
        out
    }

    /// Count loops by kind: `(do_loops, doall_loops)`.
    pub fn loop_counts(&self) -> (usize, usize) {
        let mut do_n = 0;
        let mut doall_n = 0;
        fn go(items: &[Descriptor], do_n: &mut usize, doall_n: &mut usize) {
            for d in items {
                if let Descriptor::Loop(l) = d {
                    match l.kind {
                        LoopKind::Do => *do_n += 1,
                        LoopKind::Doall => *doall_n += 1,
                    }
                    go(&l.body, do_n, doall_n);
                }
            }
        }
        go(&self.items, &mut do_n, &mut doall_n);
        (do_n, doall_n)
    }

    /// Compact one-line rendering: `DO K (DOALL I (DOALL J (eq.3)))`.
    /// Top-level items are `;`-separated.
    pub fn compact(&self, eq_label: &impl Fn(EqId) -> String) -> String {
        fn go(items: &[Descriptor], eq_label: &impl Fn(EqId) -> String) -> String {
            items
                .iter()
                .map(|d| match d {
                    Descriptor::Equation(e) => eq_label(*e),
                    Descriptor::Loop(l) => format!(
                        "{} {} ({})",
                        l.kind.keyword(),
                        l.name,
                        go(&l.body, eq_label)
                    ),
                    Descriptor::Drain(s) => format!("DRAIN {}", s.time_name),
                })
                .collect::<Vec<_>>()
                .join("; ")
        }
        go(&self.items, eq_label)
    }

    /// The maximum loop-nesting depth.
    pub fn depth(&self) -> usize {
        fn go(items: &[Descriptor]) -> usize {
            items
                .iter()
                .map(|d| match d {
                    Descriptor::Loop(l) => 1 + go(&l.body),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        go(&self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Flowchart {
        // DOALL I ( DOALL J ( eq.1 ) ); DO K ( eq.3 )
        let inner = LoopDescriptor {
            kind: LoopKind::Doall,
            subrange: SubrangeId(1),
            name: "J".into(),
            bindings: vec![],
            body: vec![Descriptor::Equation(EqId(0))],
        };
        let outer = LoopDescriptor {
            kind: LoopKind::Doall,
            subrange: SubrangeId(0),
            name: "I".into(),
            bindings: vec![],
            body: vec![Descriptor::Loop(inner)],
        };
        let k = LoopDescriptor {
            kind: LoopKind::Do,
            subrange: SubrangeId(2),
            name: "K".into(),
            bindings: vec![],
            body: vec![Descriptor::Equation(EqId(2))],
        };
        Flowchart {
            items: vec![Descriptor::Loop(outer), Descriptor::Loop(k)],
        }
    }

    #[test]
    fn compact_rendering() {
        let fc = sample();
        let label = |e: EqId| format!("eq.{}", e.0 + 1);
        assert_eq!(fc.compact(&label), "DOALL I (DOALL J (eq.1)); DO K (eq.3)");
    }

    #[test]
    fn loop_counts_and_depth() {
        let fc = sample();
        assert_eq!(fc.loop_counts(), (1, 2));
        assert_eq!(fc.depth(), 2);
    }

    #[test]
    fn equations_in_order() {
        let fc = sample();
        assert_eq!(fc.equations(), vec![EqId(0), EqId(2)]);
    }

    #[test]
    fn concat_appends() {
        let mut a = sample();
        let b = Flowchart {
            items: vec![Descriptor::Equation(EqId(9))],
        };
        a.concat(b);
        assert_eq!(a.items.len(), 3);
    }
}
