//! Loop-fusion post-pass.
//!
//! The paper notes its algorithm "performs poorly in [...] combining into a
//! single loop those equations which though not recursively related,
//! nevertheless depend on the same subscript(s)" and lists scheduler
//! improvement as implementation focus. This pass merges *adjacent sibling
//! loops* when:
//!
//! * both have the same kind (`DO`+`DO` or `DOALL`+`DOALL`),
//! * their subranges have provably equal bounds,
//! * every dataflow dependence from the first loop's equations to the
//!   second loop's equations is aligned at the fused dimension: the read
//!   subscript must be the identity (`I`), or — for `DO` loops only — a
//!   backward offset (`I - c`), which the iterative order already satisfies.
//!
//! Everything else (constant subscripts, forward offsets, dynamic
//! subscripts, scalar channels) conservatively blocks fusion.

use crate::flowchart::{Descriptor, Flowchart, LoopDescriptor, LoopKind};
use ps_depgraph::DepGraph;
use ps_lang::hir::{HirModule, LhsSub, SubscriptExpr};
use ps_lang::{EqId, IvId};

/// Fuse adjacent compatible loops throughout the flowchart.
pub fn fuse(module: &HirModule, dg: &DepGraph, fc: Flowchart) -> Flowchart {
    let _ = dg; // legality is re-derived from the HIR directly
    Flowchart {
        items: fuse_items(module, fc.items),
    }
}

fn fuse_items(module: &HirModule, items: Vec<Descriptor>) -> Vec<Descriptor> {
    // First fuse recursively inside loop bodies.
    let mut items: Vec<Descriptor> = items
        .into_iter()
        .map(|d| match d {
            Descriptor::Loop(mut l) => {
                l.body = fuse_items(module, l.body);
                Descriptor::Loop(l)
            }
            other => other,
        })
        .collect();

    // Then repeatedly merge adjacent sibling pairs.
    let mut i = 0;
    while i + 1 < items.len() {
        let can = match (&items[i], &items[i + 1]) {
            (Descriptor::Loop(a), Descriptor::Loop(b)) => can_fuse(module, a, b),
            _ => false,
        };
        if can {
            let Descriptor::Loop(b) = items.remove(i + 1) else {
                unreachable!()
            };
            let Descriptor::Loop(a) = &mut items[i] else {
                unreachable!()
            };
            a.bindings.extend(b.bindings);
            a.body.extend(b.body);
            a.body = fuse_items(module, std::mem::take(&mut a.body));
            // Stay at i: the merged loop may fuse with the next sibling too.
        } else {
            i += 1;
        }
    }
    items
}

fn can_fuse(module: &HirModule, a: &LoopDescriptor, b: &LoopDescriptor) -> bool {
    if a.kind != b.kind {
        return false;
    }
    let sra = &module.subranges[a.subrange];
    let srb = &module.subranges[b.subrange];
    if a.subrange != b.subrange && !sra.same_bounds(srb) {
        return false;
    }

    let writers = equations_of(&a.body);
    let readers = equations_of(&b.body);

    for &w in &writers {
        let weq = &module.equations[w];
        // Position of the fused dimension in the written array.
        let Some(&(_, wiv)) = a.bindings.iter().find(|(e, _)| *e == w) else {
            // An equation in the body not bound to this loop: scalar channel
            // or deeper structure we do not analyze — be conservative.
            return false;
        };
        let Some(wpos) = weq
            .lhs_subs
            .iter()
            .position(|s| matches!(s, LhsSub::Var(iv) if *iv == wiv))
        else {
            return false;
        };

        for &r in &readers {
            let req = &module.equations[r];
            let riv: Option<IvId> = b.bindings.iter().find(|(e, _)| *e == r).map(|&(_, iv)| iv);
            for (array, subs) in req.rhs.array_reads() {
                if array != weq.lhs {
                    continue;
                }
                let Some(riv) = riv else {
                    return false;
                };
                match subs.get(wpos) {
                    Some(SubscriptExpr::Var(iv)) if *iv == riv => {}
                    Some(SubscriptExpr::VarOffset(iv, d))
                        if *iv == riv && *d < 0 && a.kind == LoopKind::Do => {}
                    _ => return false,
                }
            }
            // Scalar reads of values defined in A's body block fusion only
            // if A defines scalars — impossible inside a loop, so nothing to
            // check here.
        }
    }
    true
}

fn equations_of(items: &[Descriptor]) -> Vec<EqId> {
    let fc = Flowchart {
        items: items.to_vec(),
    };
    fc.equations()
}

#[cfg(test)]
mod tests {

    use crate::schedule::{schedule_module, ScheduleOptions};
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;

    fn fused_compact(src: &str) -> String {
        let m = frontend(src).unwrap();
        let dg = build_depgraph(&m);
        let opts = ScheduleOptions {
            fuse_loops: true,
            ..Default::default()
        };
        let r = schedule_module(&m, &dg, opts).unwrap();
        r.flowchart.compact(&|e| m.equations[e].label.clone())
    }

    #[test]
    fn independent_doalls_fuse() {
        let s = fused_compact(
            "T: module (n: int; b: array[1..n] of real): [y: real];
             type I, L = 1 .. n;
             var a, c: array [1..n] of real;
             define
                a[I] = b[I] * 2.0;
                c[L] = b[L] + 1.0;
                y = a[1] + c[1];
             end T;",
        );
        assert_eq!(s, "DOALL I (eq.1; eq.2); eq.3");
    }

    #[test]
    fn identity_dependence_fuses() {
        let s = fused_compact(
            "T: module (n: int; b: array[1..n] of real): [y: real];
             type I, L = 1 .. n;
             var a, c: array [1..n] of real;
             define
                a[I] = b[I] * 2.0;
                c[L] = a[L] + 1.0;
                y = c[1];
             end T;",
        );
        assert_eq!(s, "DOALL I (eq.1; eq.2); eq.3");
    }

    #[test]
    fn offset_dependence_blocks_doall_fusion() {
        let s = fused_compact(
            "T: module (n: int; b: array[0..n] of real): [y: real];
             type I, L = 1 .. n;
             var a: array [0..n] of real; c: array [1..n] of real;
             define
                a[0] = 0.0;
                a[I] = b[I] * 2.0;
                c[L] = a[L-1] + 1.0;
                y = c[1];
             end T;",
        );
        // a's loop and c's loop must stay separate: c[L] reads a[L-1].
        assert!(
            s.contains("DOALL I (eq.2); DOALL L (eq.3)"),
            "unexpected fusion: {s}"
        );
    }

    #[test]
    fn different_bounds_block_fusion() {
        let s = fused_compact(
            "T: module (n: int; b: array[1..n+1] of real): [y: real];
             type I = 1 .. n; L = 1 .. n+1;
             var a: array [1..n] of real; c: array [1..n+1] of real;
             define
                a[I] = b[I] * 2.0;
                c[L] = b[L] + 1.0;
                y = a[1] + c[1];
             end T;",
        );
        assert!(s.contains("DOALL I (eq.1); DOALL L (eq.2)"), "{s}");
    }

    #[test]
    fn relaxation_unchanged_by_fusion() {
        // The three loop nests of Figure 6 must not merge: eq.1/eq.3 and
        // eq.3/eq.2 communicate through constant/upper-bound planes.
        let s = fused_compact(crate::testprogs::RELAXATION_V1);
        assert_eq!(
            s,
            "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); \
             DOALL I (DOALL J (eq.2))"
        );
    }
}
