//! The scheduling phase of the PS compiler (paper Section 3).
//!
//! Implements the two mutually recursive procedures of Section 3.3:
//!
//! * **Schedule-Graph** — decompose the (sub)graph into Maximally Strongly
//!   Connected Components and schedule each in topological order;
//! * **Schedule-Component** — pick an unscheduled dimension, verify it
//!   appears in a consistent position in every node of the component with
//!   only `I` / `I - constant` subscript forms, delete the `I - constant`
//!   edges, emit a loop descriptor (**DO** if edges were deleted, **DOALL**
//!   otherwise), and recurse.
//!
//! On top of the core algorithm this crate provides:
//!
//! * [`virtualdim`] — the Section 3.4 analysis marking dimensions *virtual*
//!   (allocated as a sliding window) and the resulting [`memory::MemoryPlan`],
//! * [`validate`] — a conservative checker that replays a flowchart and
//!   verifies every (affine) read happens after the corresponding write,
//! * [`fusion`] — the loop-merging post-pass the paper lists as ongoing
//!   implementation work,
//! * [`render`] — the Figure 5/6/7 textual renderings.

#![forbid(unsafe_code)]

pub mod dims;
pub mod flowchart;
pub mod fusion;
pub mod memory;
pub mod render;
pub mod schedule;
pub mod validate;
pub mod virtualdim;

pub use flowchart::{Descriptor, DrainSpec, Flowchart, LoopDescriptor, LoopKind};
pub use memory::{DimAlloc, MemoryPlan};
pub use schedule::{
    schedule_module, ComponentInfo, PickPolicy, ScheduleError, ScheduleOptions, ScheduleResult,
};
pub use validate::{validate_flowchart, ValidationError};

/// Shared test programs (the paper's two Relaxation variants).
#[cfg(test)]
pub(crate) mod testprogs {
    pub const RELAXATION_V1: &str = "
        Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end Relaxation;
    ";

    pub const RELAXATION_V2: &str = "
        Relaxation2: module (InitialA: array[I,J] of real;
                             M: int; maxK: int):
                    [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K,I,J-1] + A[K,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end Relaxation2;
    ";
}
