//! Memory plans: which dimensions are windowed, and how much storage the
//! generated program needs (the Section 3.4 / Section 4 space accounting).

use ps_lang::hir::HirModule;
use ps_lang::DataId;
use ps_support::{FxHashMap, Symbol};

/// Allocation decision for one dimension of one array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DimAlloc {
    /// Allocate the declared extent.
    Physical,
    /// Allocate a sliding window of `window` planes, indexed modulo the
    /// window ("the k'th dimension of A can be thought of as a *virtual*
    /// dimension rather than one physically allocated in its entirety").
    Virtual { window: i64 },
}

/// Per-array, per-dimension allocation plan.
#[derive(Clone, Debug, Default)]
pub struct MemoryPlan {
    windows: FxHashMap<(DataId, usize), i64>,
}

impl MemoryPlan {
    pub fn new() -> MemoryPlan {
        MemoryPlan::default()
    }

    pub(crate) fn set_window(&mut self, data: DataId, dim: usize, window: i64) {
        // Multiple components may analyze the same dimension (it can only
        // happen with identical results); keep the larger window defensively.
        let entry = self.windows.entry((data, dim)).or_insert(window);
        *entry = (*entry).max(window);
    }

    /// The window for `(data, dim)`, or `None` when physical.
    pub fn window(&self, data: DataId, dim: usize) -> Option<i64> {
        self.windows.get(&(data, dim)).copied()
    }

    pub fn alloc(&self, data: DataId, dim: usize) -> DimAlloc {
        match self.window(data, dim) {
            Some(window) => DimAlloc::Virtual { window },
            None => DimAlloc::Physical,
        }
    }

    /// Number of windowed dimensions in the plan.
    pub fn virtual_dim_count(&self) -> usize {
        self.windows.len()
    }

    /// Element count for an array under this plan, given parameter values.
    /// `None` when a bound cannot be evaluated.
    pub fn alloc_elements(
        &self,
        module: &HirModule,
        data: DataId,
        params: &FxHashMap<Symbol, i64>,
    ) -> Option<u64> {
        let item = &module.data[data];
        let mut total: u64 = 1;
        for (dim, &sr) in item.dims().iter().enumerate() {
            let subrange = &module.subranges[sr];
            let lo = subrange.lo.eval(params)?;
            let hi = subrange.hi.eval(params)?;
            let full = (hi - lo + 1).max(0) as u64;
            let width = match self.alloc(data, dim) {
                DimAlloc::Physical => full,
                DimAlloc::Virtual { window } => (window as u64).min(full),
            };
            total = total.checked_mul(width)?;
        }
        Some(total)
    }

    /// Element count without any windowing (the "physically allocated in its
    /// entirety" baseline).
    pub fn full_elements(
        module: &HirModule,
        data: DataId,
        params: &FxHashMap<Symbol, i64>,
    ) -> Option<u64> {
        MemoryPlan::new().alloc_elements(module, data, params)
    }

    /// Total bytes of local-array storage under this plan, assuming 8-byte
    /// elements.
    pub fn total_local_bytes(
        &self,
        module: &HirModule,
        params: &FxHashMap<Symbol, i64>,
    ) -> Option<u64> {
        let mut total = 0u64;
        for (id, item) in module.data.iter_enumerated() {
            if item.kind == ps_lang::hir::DataKind::Local && item.is_array() {
                total += self.alloc_elements(module, id, params)? * 8;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;

    #[test]
    fn alloc_elements_respects_windows() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of array [0 .. n+1] of real;
             define
                a[1] = 0.0;
                a[K] = a[K-1] + 1.0;
                y = a[n, 0];
             end T;",
        )
        .unwrap();
        let a = m.data_by_name("a").unwrap();
        let mut params = FxHashMap::default();
        params.insert(Symbol::intern("n"), 10);

        let mut plan = MemoryPlan::new();
        assert_eq!(plan.alloc_elements(&m, a, &params), Some(10 * 12));
        plan.set_window(a, 0, 2);
        assert_eq!(plan.alloc_elements(&m, a, &params), Some(2 * 12));
        assert_eq!(MemoryPlan::full_elements(&m, a, &params), Some(120));
        assert_eq!(plan.alloc(a, 0), DimAlloc::Virtual { window: 2 });
        assert_eq!(plan.alloc(a, 1), DimAlloc::Physical);
        assert_eq!(plan.total_local_bytes(&m, &params), Some(2 * 12 * 8));
    }

    #[test]
    fn window_never_exceeds_extent() {
        let m = frontend(
            "T: module (): [y: real];
             var a: array [1 .. 2] of real;
             define
                a[1] = 0.0; a[2] = 1.0;
                y = a[2];
             end T;",
        )
        .unwrap();
        let a = m.data_by_name("a").unwrap();
        let mut plan = MemoryPlan::new();
        plan.set_window(a, 0, 5);
        let params = FxHashMap::default();
        assert_eq!(plan.alloc_elements(&m, a, &params), Some(2));
    }

    #[test]
    fn set_window_keeps_max() {
        let mut plan = MemoryPlan::new();
        plan.set_window(DataId(0), 0, 2);
        plan.set_window(DataId(0), 0, 3);
        plan.set_window(DataId(0), 0, 1);
        assert_eq!(plan.window(DataId(0), 0), Some(3));
        assert_eq!(plan.virtual_dim_count(), 1);
    }
}
