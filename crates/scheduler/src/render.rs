//! Textual renderings of scheduler output: the paper's Figures 5, 6 and 7.

use crate::flowchart::{Descriptor, Flowchart};
use crate::schedule::ScheduleResult;
use ps_lang::hir::HirModule;
use ps_support::pretty::PrettyWriter;

/// Figure 6/7 style indented rendering:
///
/// ```text
/// DOALL I (
///   DOALL J (
///     eq.1
///   )
/// )
/// ```
pub fn render_flowchart(module: &HirModule, fc: &Flowchart) -> String {
    let mut w = PrettyWriter::with_indent_str("  ");
    fn go(module: &HirModule, items: &[Descriptor], w: &mut PrettyWriter) {
        for d in items {
            match d {
                Descriptor::Equation(e) => {
                    w.line(&module.equations[*e].label);
                }
                Descriptor::Loop(l) => {
                    w.line(&format!("{} {} (", l.kind.keyword(), l.name));
                    w.indented(|w| go(module, &l.body, w));
                    w.line(")");
                }
                Descriptor::Drain(s) => {
                    w.line(&format!(
                        "DRAIN {} -> {} (plane {})",
                        module.data[s.src].name, module.data[s.dst].name, s.time_name
                    ));
                }
            }
        }
    }
    go(module, &fc.items, &mut w);
    w.finish()
}

/// Figure 5 style table: one row per top-level MSCC.
pub fn render_component_table(result: &ScheduleResult) -> String {
    let mut w = PrettyWriter::new();
    w.line("Component | Node(s)            | Flowchart");
    w.line("----------|--------------------|----------");
    for (i, c) in result.components.iter().enumerate() {
        w.line(&format!(
            "{:<9} | {:<18} | {}",
            i + 1,
            c.nodes.join(", "),
            c.flowchart
        ));
    }
    w.finish()
}

/// Memory-plan summary: which dimensions are windowed.
pub fn render_memory_plan(module: &HirModule, result: &ScheduleResult) -> String {
    let mut w = PrettyWriter::new();
    let mut any = false;
    for (id, item) in module.data.iter_enumerated() {
        if !item.is_array() {
            continue;
        }
        let descr: Vec<String> = (0..item.dims().len())
            .map(|d| match result.memory.window(id, d) {
                Some(win) => format!("virtual(window {win})"),
                None => "physical".to_string(),
            })
            .collect();
        if descr.iter().any(|d| d.starts_with("virtual")) {
            any = true;
        }
        w.line(&format!("{}: [{}]", item.name, descr.join(", ")));
    }
    if !any {
        w.line("(no virtual dimensions)");
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_module, ScheduleOptions};
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;

    #[test]
    fn figure6_indented_rendering() {
        let m = frontend(crate::testprogs::RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let text = render_flowchart(&m, &r.flowchart);
        let expected = "\
DOALL I (
  DOALL J (
    eq.1
  )
)
DO K (
  DOALL I (
    DOALL J (
      eq.3
    )
  )
)
DOALL I (
  DOALL J (
    eq.2
  )
)
";
        assert_eq!(text, expected);
    }

    #[test]
    fn component_table_lists_all() {
        let m = frontend(crate::testprogs::RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let table = render_component_table(&r);
        assert_eq!(table.lines().count(), 2 + 7);
        assert!(table.contains("null"));
    }

    #[test]
    fn memory_plan_rendering() {
        let m = frontend(crate::testprogs::RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let text = render_memory_plan(&m, &r);
        assert!(text.contains("A: [virtual(window 2), physical, physical]"));
    }
}
