//! Schedule-Graph / Schedule-Component (paper Section 3.3).

use crate::dims::{try_match, DimMatch};
use crate::flowchart::{Descriptor, Flowchart, LoopDescriptor, LoopKind};
use crate::memory::MemoryPlan;
use crate::virtualdim;
use ps_depgraph::{DepEdge, DepGraph, DepNode, DepNodeKind};
use ps_graph::scc::ordered_components_filtered;
use ps_graph::{DiGraph, NodeId};
use ps_lang::hir::HirModule;
use ps_lang::IvId;
use ps_support::{FxHashMap, FxHashSet};

/// How Schedule-Component picks among candidate dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PickPolicy {
    /// The paper's behaviour: first unscheduled dimension in declaration
    /// order (equation nodes in id order, index variables in LHS order).
    #[default]
    DeclarationOrder,
    /// Ablation: among verifiable candidates, prefer one that deletes no
    /// edges (yielding an outer DOALL) before falling back.
    PreferParallel,
}

/// Options for [`schedule_module`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScheduleOptions {
    pub pick: PickPolicy,
    /// Run the loop-fusion post-pass (paper: "improvement of the scheduler
    /// to better merge iterative loops").
    pub fuse_loops: bool,
}

/// A component row of the Figure-5 table.
#[derive(Clone, Debug)]
pub struct ComponentInfo {
    /// Names of the nodes in the MSCC (`["A", "eq.3"]`).
    pub nodes: Vec<String>,
    /// Compact flowchart returned by Schedule-Component for this component.
    pub flowchart: String,
}

/// Scheduling failure: the algorithm of the paper signals an error when a
/// multi-node component has no schedulable dimension left (step 2a).
#[derive(Clone, Debug)]
pub struct ScheduleError {
    pub message: String,
    /// Node names of the offending component.
    pub component: Vec<String>,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (component: {})",
            self.message,
            self.component.join(", ")
        )
    }
}

impl std::error::Error for ScheduleError {}

/// The output of the scheduler.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    pub flowchart: Flowchart,
    /// Virtual-dimension memory plan (Section 3.4).
    pub memory: MemoryPlan,
    /// Top-level MSCCs in scheduling order with their per-component
    /// flowcharts (the Figure-5 table).
    pub components: Vec<ComponentInfo>,
}

/// Internal scheduling state shared with the dimension matcher.
pub struct SchedState {
    /// Mutable copy of the dependency graph; edge deletion is deactivation.
    pub graph: DiGraph<DepNode, DepEdge>,
    /// Scheduled index variables per equation node.
    scheduled_eq: FxHashMap<NodeId, FxHashSet<IvId>>,
    /// Scheduled dimension positions per data node.
    scheduled_data: FxHashMap<NodeId, FxHashSet<usize>>,
}

impl SchedState {
    pub fn is_eq_scheduled(&self, node: NodeId, iv: IvId) -> bool {
        self.scheduled_eq
            .get(&node)
            .map(|s| s.contains(&iv))
            .unwrap_or(false)
    }

    pub fn is_data_scheduled(&self, node: NodeId, dim: usize) -> bool {
        self.scheduled_data
            .get(&node)
            .map(|s| s.contains(&dim))
            .unwrap_or(false)
    }
}

struct Scheduler<'a> {
    module: &'a HirModule,
    dg: &'a DepGraph,
    state: SchedState,
    memory: MemoryPlan,
    options: ScheduleOptions,
}

/// Run the scheduling algorithm over a module's dependency graph.
pub fn schedule_module(
    module: &HirModule,
    dg: &DepGraph,
    options: ScheduleOptions,
) -> Result<ScheduleResult, ScheduleError> {
    let mut sched = Scheduler {
        module,
        dg,
        state: SchedState {
            graph: dg.graph.clone(),
            scheduled_eq: FxHashMap::default(),
            scheduled_data: FxHashMap::default(),
        },
        memory: MemoryPlan::new(),
        options,
    };

    // Top level of Schedule-Graph, with per-component bookkeeping for the
    // Figure-5 table.
    let all: FxHashSet<NodeId> = sched.state.graph.node_ids().collect();
    let sccs = ordered_components_filtered(&sched.state.graph, |n| all.contains(&n));
    let mut flowchart = Flowchart::new();
    let mut components = Vec::new();
    for (_, comp_nodes) in sccs.iter() {
        let comp_fc = sched.schedule_component(comp_nodes)?;
        components.push(ComponentInfo {
            nodes: comp_nodes
                .iter()
                .map(|&n| sched.state.graph.node(n).name.clone())
                .collect(),
            flowchart: if comp_fc.is_empty() {
                "null".to_string()
            } else {
                comp_fc.compact(&|e| sched.module.equations[e].label.clone())
            },
        });
        flowchart.concat(comp_fc);
    }

    if options.fuse_loops {
        flowchart = crate::fusion::fuse(module, dg, flowchart);
    }

    Ok(ScheduleResult {
        flowchart,
        memory: sched.memory,
        components,
    })
}

impl<'a> Scheduler<'a> {
    /// Schedule-Graph: MSCC decomposition in topological order.
    fn schedule_graph(&mut self, nodes: &FxHashSet<NodeId>) -> Result<Flowchart, ScheduleError> {
        let sccs = ordered_components_filtered(&self.state.graph, |n| nodes.contains(&n));
        let mut fc = Flowchart::new();
        // Collect node lists first: scheduling mutates edge activation, but
        // never the node set, so the decomposition stays valid.
        let comps: Vec<Vec<NodeId>> = sccs.components.clone();
        for comp in &comps {
            fc.concat(self.schedule_component(comp)?);
        }
        Ok(fc)
    }

    /// Schedule-Component: steps 1–8 of the paper.
    fn schedule_component(&mut self, comp: &[NodeId]) -> Result<Flowchart, ScheduleError> {
        // Step 1: a single data node schedules to null.
        if comp.len() == 1 && self.dg.is_data(comp[0]) {
            return Ok(Flowchart::new());
        }

        let comp_set: FxHashSet<NodeId> = comp.iter().copied().collect();
        let candidates = self.candidates(comp);

        if candidates.is_empty() {
            // Step 2a/2b: no dimensions left.
            if comp.len() == 1 {
                if let DepNodeKind::Equation(eq) = self.dg.node_kind(comp[0]) {
                    return Ok(Flowchart {
                        items: vec![Descriptor::Equation(eq)],
                    });
                }
            }
            return Err(self.not_schedulable(comp, "no unscheduled dimension is available"));
        }

        // Steps 2–3: try candidates until one verifies.
        let mut matches: Vec<DimMatch> = Vec::new();
        for (seed_node, seed_iv) in candidates {
            if let Some(m) = try_match(
                self.module,
                self.dg,
                &self.state,
                &comp_set,
                seed_node,
                seed_iv,
            ) {
                match self.options.pick {
                    PickPolicy::DeclarationOrder => {
                        matches.push(m);
                        break;
                    }
                    PickPolicy::PreferParallel => {
                        if m.deletable.is_empty() {
                            // An outer DOALL: take it immediately.
                            matches.insert(0, m);
                            break;
                        }
                        matches.push(m);
                    }
                }
            }
        }
        let Some(m) = matches.into_iter().next() else {
            return Err(self.not_schedulable(
                comp,
                "no dimension appears in a consistent position with only \
                 `I` / `I - constant` subscripts",
            ));
        };

        // Section 3.4: virtual-dimension analysis runs while the component
        // is being scheduled, before edge deletion (it must see every
        // reference, including edges deleted for outer dimensions).
        virtualdim::analyze(
            self.module,
            self.dg,
            &self.state,
            &comp_set,
            &m,
            &mut self.memory,
        );

        // Step 4: delete the `I - constant` edges.
        for &e in &m.deletable {
            self.state.graph.deactivate_edge(e);
        }
        // Step 6: iterative if edges were deleted, parallel otherwise.
        let kind = if m.deletable.is_empty() {
            LoopKind::Doall
        } else {
            LoopKind::Do
        };

        // Step 5: mark the dimension scheduled.
        let mut bindings = Vec::new();
        for (&node, &iv) in &m.eq_iv {
            self.state.scheduled_eq.entry(node).or_default().insert(iv);
            if let DepNodeKind::Equation(eq) = self.dg.node_kind(node) {
                bindings.push((eq, iv));
            }
        }
        bindings.sort_by_key(|(eq, _)| *eq);
        for (&node, &dim) in &m.data_pos {
            self.state
                .scheduled_data
                .entry(node)
                .or_default()
                .insert(dim);
        }

        // Steps 7–8: recurse on the subgraph and wrap in the loop.
        let body = self.schedule_graph(&comp_set)?;
        Ok(Flowchart {
            items: vec![Descriptor::Loop(LoopDescriptor {
                kind,
                subrange: m.subrange,
                name: m.name,
                bindings,
                body: body.items,
            })],
        })
    }

    /// Candidate seeds: unscheduled index variables of the component's
    /// equation nodes, in declaration order.
    fn candidates(&self, comp: &[NodeId]) -> Vec<(NodeId, IvId)> {
        let mut nodes: Vec<NodeId> = comp
            .iter()
            .copied()
            .filter(|&n| self.dg.is_equation(n))
            .collect();
        nodes.sort();
        let mut out = Vec::new();
        for n in nodes {
            if let DepNodeKind::Equation(eq) = self.dg.node_kind(n) {
                for (iv, _) in self.module.equations[eq].ivs.iter_enumerated() {
                    if !self.state.is_eq_scheduled(n, iv) {
                        out.push((n, iv));
                    }
                }
            }
        }
        out
    }

    fn not_schedulable(&self, comp: &[NodeId], reason: &str) -> ScheduleError {
        ScheduleError {
            message: format!("equations cannot be scheduled by this algorithm: {reason}"),
            component: comp
                .iter()
                .map(|&n| self.state.graph.node(n).name.clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;

    pub(crate) use crate::testprogs::RELAXATION_V1;

    pub(crate) use crate::testprogs::RELAXATION_V2;

    fn run(src: &str) -> (ps_lang::HirModule, ScheduleResult) {
        let m = frontend(src).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        (m, r)
    }

    fn compact(m: &ps_lang::HirModule, fc: &Flowchart) -> String {
        fc.compact(&|e| m.equations[e].label.clone())
    }

    #[test]
    fn figure6_schedule_for_v1() {
        let (m, r) = run(RELAXATION_V1);
        assert_eq!(
            compact(&m, &r.flowchart),
            "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); \
             DOALL I (DOALL J (eq.2))"
        );
        assert_eq!(r.flowchart.loop_counts(), (1, 6));
    }

    #[test]
    fn figure7_schedule_for_v2() {
        let (m, r) = run(RELAXATION_V2);
        assert_eq!(
            compact(&m, &r.flowchart),
            "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); \
             DOALL I (DOALL J (eq.2))"
        );
    }

    #[test]
    fn figure5_component_table() {
        let (_, r) = run(RELAXATION_V1);
        // Seven MSCCs (paper Figure 5).
        assert_eq!(r.components.len(), 7);
        let names: Vec<Vec<String>> = r.components.iter().map(|c| c.nodes.clone()).collect();
        // The multi-node component is exactly {A, eq.3}.
        let multi: Vec<_> = names.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(multi.len(), 1);
        let mut ab = multi[0].clone();
        ab.sort();
        assert_eq!(ab, vec!["A".to_string(), "eq.3".to_string()]);
        // Data-only components schedule to null.
        for c in &r.components {
            if c.nodes.len() == 1 && !c.nodes[0].starts_with("eq.") {
                assert_eq!(c.flowchart, "null");
            }
        }
        // eq.1 must come before the recursive component, which precedes eq.2.
        let pos = |label: &str| {
            r.components
                .iter()
                .position(|c| c.flowchart.contains(label))
                .unwrap()
        };
        assert!(pos("eq.1") < pos("eq.3"));
        assert!(pos("eq.3") < pos("eq.2"));
    }

    #[test]
    fn virtual_window_for_v1() {
        let (m, r) = run(RELAXATION_V1);
        let a = m.data_by_name("A").unwrap();
        // Dimension K of A is virtual with window 2; I and J physical.
        assert_eq!(r.memory.window(a, 0), Some(2));
        assert_eq!(r.memory.window(a, 1), None);
        assert_eq!(r.memory.window(a, 2), None);
    }

    #[test]
    fn virtual_window_for_v2_matches_paper() {
        // "The virtual dimension analysis gives the same result as in the
        //  previous version: the first dimension of A is virtual with window
        //  of two elements."
        let (m, r) = run(RELAXATION_V2);
        let a = m.data_by_name("A").unwrap();
        assert_eq!(r.memory.window(a, 0), Some(2));
        assert_eq!(r.memory.window(a, 1), None, "I has I+1 references");
        assert_eq!(r.memory.window(a, 2), None, "J has J+1 references");
    }

    #[test]
    fn footnote_inconsistent_positions_rejected() {
        // A[I,J] = A[I,J-1] + A[J,I]: I and J are not in consistent
        // positions (paper footnote 2) — and no other dimension works.
        let m = frontend(
            "T: module (n: int; init: array[I] of real): [y: real];
             type I, J = 1 .. n;
             var a: array [I, J] of real;
             define
                a[I, J] = if (I = 1) or (J = 1) then 0.5
                          else a[I, J-1] + a[J, I];
                y = a[n, n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let err = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap_err();
        assert!(err.component.contains(&"a".to_string()), "{err}");
    }

    #[test]
    fn simple_recurrence_is_iterative() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 1.0;
                a[K] = a[K-1] * 2.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let s = r.flowchart.compact(&|e| m.equations[e].label.clone());
        assert_eq!(s, "eq.1; DO K (eq.2); eq.3");
        // Window 2 on the only dimension.
        let a = m.data_by_name("a").unwrap();
        assert_eq!(r.memory.window(a, 0), Some(2));
    }

    #[test]
    fn independent_equations_all_parallel() {
        let m = frontend(
            "T: module (n: int; b: array[1..n] of real): [y: real];
             type I = 1 .. n;
             var a, c: array [I] of real;
             define
                a[I] = b[I] * 2.0;
                c[I] = b[I] + 1.0;
                y = a[1] + c[1];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let (do_n, doall_n) = r.flowchart.loop_counts();
        assert_eq!(do_n, 0);
        assert_eq!(doall_n, 2);
    }

    #[test]
    fn offset_two_gives_window_three() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 3 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 0.0;
                a[2] = 1.0;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(r.memory.window(a, 0), Some(3), "fibonacci needs 3 planes");
    }

    #[test]
    fn result_read_not_at_upper_bound_blocks_window() {
        // y reads a[1] (not the upper bound) from outside the component:
        // rule 2 fails, dimension must stay physical.
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 1.0;
                a[K] = a[K-1] * 2.0;
                y = a[1];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(r.memory.window(a, 0), None);
    }

    #[test]
    fn scalar_cycle_not_schedulable() {
        // Mutually recursive scalars (via arrays) cannot be scheduled.
        let m = frontend(
            "T: module (n: int): [y: real];
             type I = 1 .. n;
             var a: array [I] of real; s: real;
             define
                s = a[n];
                a[I] = s + 1.0;
                y = s;
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let err = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap_err();
        assert!(err.message.contains("cannot be scheduled"));
    }
}
