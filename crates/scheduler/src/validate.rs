//! Conservative schedule validation by abstract replay.
//!
//! Walks a flowchart with concrete parameter values, tracking which array
//! elements have been defined, and checks that
//!
//! * every (affine, in-bounds) read finds its element already written,
//! * no element is written twice (single assignment),
//! * every `DOALL` loop is order-independent: the replay runs twice, once
//!   iterating DOALLs forward and once backward — any cross-iteration
//!   dependence with nonzero distance fails in one of the two directions.
//!
//! Reads through dynamic subscripts and reads that fall outside the declared
//! bounds (assumed guarded by `if` expressions, like the Relaxation boundary
//! rows) are skipped. The checker is intentionally independent of the real
//! runtime so it can validate schedules without executing arithmetic.

use crate::flowchart::{Descriptor, DrainSpec, Flowchart};
use crate::LoopKind;
use ps_lang::hir::{HExpr, HirModule, LhsSub, SubscriptExpr};
use ps_lang::{DataId, EqId, IvId};
use ps_support::{FxHashMap, FxHashSet, Symbol};

/// A dependence violation found during replay.
#[derive(Clone, Debug)]
pub struct ValidationError {
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Validate `fc` under the given parameter values.
pub fn validate_flowchart(
    module: &HirModule,
    fc: &Flowchart,
    params: &FxHashMap<Symbol, i64>,
) -> Result<(), ValidationError> {
    for reverse_doall in [false, true] {
        let mut replay = Replay {
            module,
            params,
            reverse_doall,
            defined: FxHashSet::default(),
            env: FxHashMap::default(),
            loop_stack: Vec::new(),
        };
        replay.walk(&fc.items)?;
        // Every non-param data item fully written is not checked here (the
        // region analysis covers coverage); we only verify ordering.
    }
    Ok(())
}

struct Replay<'a> {
    module: &'a HirModule,
    params: &'a FxHashMap<Symbol, i64>,
    reverse_doall: bool,
    /// Written elements: (data, index-vector). Scalars use an empty vector;
    /// record fields use a one-element vector.
    defined: FxHashSet<(DataId, Vec<i64>)>,
    env: FxHashMap<(EqId, IvId), i64>,
    /// Current loop indices, innermost last (used by Drain).
    loop_stack: Vec<i64>,
}

impl<'a> Replay<'a> {
    fn err(&self, message: String) -> ValidationError {
        ValidationError { message }
    }

    fn walk(&mut self, items: &[Descriptor]) -> Result<(), ValidationError> {
        for d in items {
            match d {
                Descriptor::Equation(eq) => self.run_equation(*eq)?,
                Descriptor::Loop(l) => {
                    let sr = &self.module.subranges[l.subrange];
                    let lo = sr
                        .lo
                        .eval(self.params)
                        .ok_or_else(|| self.err(format!("cannot evaluate bound {}", sr.lo)))?;
                    let hi = sr
                        .hi
                        .eval(self.params)
                        .ok_or_else(|| self.err(format!("cannot evaluate bound {}", sr.hi)))?;
                    let indices: Vec<i64> = if l.kind == LoopKind::Doall && self.reverse_doall {
                        (lo..=hi).rev().collect()
                    } else {
                        (lo..=hi).collect()
                    };
                    for i in indices {
                        for &(eq, iv) in &l.bindings {
                            self.env.insert((eq, iv), i);
                        }
                        self.loop_stack.push(i);
                        self.walk(&l.body)?;
                        self.loop_stack.pop();
                    }
                    for &(eq, iv) in &l.bindings {
                        self.env.remove(&(eq, iv));
                    }
                }
                Descriptor::Drain(spec) => self.run_drain(spec)?,
            }
        }
        Ok(())
    }

    fn run_equation(&mut self, eq_id: EqId) -> Result<(), ValidationError> {
        let eq = &self.module.equations[eq_id];

        // Reads first (they must precede the write even for self-recursive
        // equations — those always reference earlier iterations).
        for (array, subs) in eq.rhs.array_reads() {
            if self.module.data[array].kind == ps_lang::hir::DataKind::Param {
                continue;
            }
            let Some(index) = self.resolve_subs(eq_id, subs) else {
                continue; // dynamic subscript: unknowable, skip
            };
            if !self.in_bounds(array, &index) {
                continue; // assumed guarded
            }
            if !self.defined.contains(&(array, index.clone())) {
                return Err(self.err(format!(
                    "{} reads {}{index:?} before it is written",
                    eq.label, self.module.data[array].name
                )));
            }
        }
        for d in eq.rhs.scalar_reads() {
            if self.module.data[d].kind == ps_lang::hir::DataKind::Param {
                continue;
            }
            // Record fields tracked per-field via ReadField index.
            let key = (d, Vec::new());
            let field_read = matches!(&self.module.data[d].ty, ps_lang::types::Ty::Record(_));
            if field_read {
                // Conservatively require at least the specific field; the
                // scalar_reads API flattens fields, so check any-field here
                // via the per-field keys inserted on writes.
                continue; // handled below via explicit field visit
            }
            if !self.defined.contains(&key) {
                return Err(self.err(format!(
                    "{} reads scalar {} before it is written",
                    eq.label, self.module.data[d].name
                )));
            }
        }
        // Field reads need the field index, which scalar_reads drops; visit.
        let mut field_err: Option<String> = None;
        eq.rhs.visit(&mut |e| {
            if let HExpr::ReadField(d, idx) = e {
                if self.module.data[*d].kind != ps_lang::hir::DataKind::Param
                    && !self.defined.contains(&(*d, vec![*idx as i64]))
                    && field_err.is_none()
                {
                    field_err = Some(format!(
                        "{} reads field {}#{idx} before it is written",
                        eq.label, self.module.data[*d].name
                    ));
                }
            }
        });
        if let Some(msg) = field_err {
            return Err(self.err(msg));
        }

        // Write.
        let index: Vec<i64> = match eq.lhs_field {
            Some(fidx) => vec![fidx as i64],
            None => {
                let mut out = Vec::with_capacity(eq.lhs_subs.len());
                for s in &eq.lhs_subs {
                    let v = match s {
                        LhsSub::Const(a) => a.eval(self.params).ok_or_else(|| {
                            self.err(format!("cannot evaluate LHS subscript {a}"))
                        })?,
                        LhsSub::Var(iv) => *self.env.get(&(eq_id, *iv)).ok_or_else(|| {
                            self.err(format!(
                                "{}: index variable {} unbound at execution",
                                eq.label, eq.ivs[*iv].name
                            ))
                        })?,
                    };
                    out.push(v);
                }
                out
            }
        };
        if !self.defined.insert((eq.lhs, index.clone())) {
            return Err(self.err(format!(
                "{} writes {}{index:?} twice (single assignment violated)",
                eq.label, self.module.data[eq.lhs].name
            )));
        }
        Ok(())
    }

    fn run_drain(&mut self, spec: &DrainSpec) -> Result<(), ValidationError> {
        let t = *self
            .loop_stack
            .last()
            .ok_or_else(|| self.err("drain outside any loop".to_string()))?;

        // Iterate the inner (non-time) transformed dims.
        let mut ranges = Vec::new();
        for &sr in &spec.inner {
            let s = &self.module.subranges[sr];
            let lo =
                s.lo.eval(self.params)
                    .ok_or_else(|| self.err(format!("cannot evaluate bound {}", s.lo)))?;
            let hi =
                s.hi.eval(self.params)
                    .ok_or_else(|| self.err(format!("cannot evaluate bound {}", s.hi)))?;
            ranges.push((lo, hi));
        }
        let mut idx: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        'outer: loop {
            // Transformed point: [t, idx...]. Compute original coordinates.
            let mut loop_vals = Vec::with_capacity(1 + idx.len());
            loop_vals.push(t);
            loop_vals.extend(idx.iter().copied());
            let original: Option<Vec<i64>> = spec
                .original
                .iter()
                .map(|(coeffs, rest)| {
                    let base = rest.eval(self.params)?;
                    Some(
                        base + coeffs
                            .iter()
                            .zip(&loop_vals)
                            .map(|(c, v)| c * v)
                            .sum::<i64>(),
                    )
                })
                .collect();
            let original =
                original.ok_or_else(|| self.err("cannot evaluate drain transform".to_string()))?;

            // In-domain and at the drain plane?
            let mut in_domain = true;
            for (k, (lo_a, hi_a)) in spec.original_bounds.iter().enumerate() {
                let lo = lo_a.eval(self.params).unwrap_or(i64::MIN);
                let hi = hi_a.eval(self.params).unwrap_or(i64::MAX);
                if original[k] < lo || original[k] > hi {
                    in_domain = false;
                    break;
                }
            }
            if in_domain {
                let drain_hi = spec.original_bounds[spec.drain_dim]
                    .1
                    .eval(self.params)
                    .unwrap_or(i64::MAX);
                if original[spec.drain_dim] == drain_hi {
                    // Read src[t, idx...]; write dst[original \ drain_dim].
                    let mut src_index = vec![t];
                    src_index.extend(idx.iter().copied());
                    if !self.defined.contains(&(spec.src, src_index.clone())) {
                        return Err(self.err(format!(
                            "drain reads {}{src_index:?} before it is written",
                            self.module.data[spec.src].name
                        )));
                    }
                    let dst_index: Vec<i64> = original
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != spec.drain_dim)
                        .map(|(_, &v)| v)
                        .collect();
                    if !self.defined.insert((spec.dst, dst_index.clone())) {
                        return Err(self.err(format!(
                            "drain writes {}{dst_index:?} twice",
                            self.module.data[spec.dst].name
                        )));
                    }
                }
            }

            // Advance the odometer.
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] <= ranges[k].1 {
                    continue 'outer;
                }
                idx[k] = ranges[k].0;
                if k == 0 {
                    break 'outer;
                }
            }
            if idx.is_empty() {
                break;
            }
        }
        Ok(())
    }

    fn resolve_subs(&self, eq: EqId, subs: &[SubscriptExpr]) -> Option<Vec<i64>> {
        subs.iter()
            .map(|s| match s {
                SubscriptExpr::Var(iv) => self.env.get(&(eq, *iv)).copied(),
                SubscriptExpr::VarOffset(iv, d) => self.env.get(&(eq, *iv)).map(|v| v + d),
                SubscriptExpr::Affine(a) => {
                    let mut total = a.rest.eval(self.params)?;
                    for &(iv, c) in &a.iv_terms {
                        total += c * self.env.get(&(eq, iv)).copied()?;
                    }
                    Some(total)
                }
                SubscriptExpr::Dynamic(_) => None,
            })
            .collect()
    }

    fn in_bounds(&self, data: DataId, index: &[i64]) -> bool {
        let dims = self.module.data[data].dims();
        if dims.len() != index.len() {
            return false;
        }
        for (&sr, &i) in dims.iter().zip(index) {
            let s = &self.module.subranges[sr];
            let lo = s.lo.eval(self.params).unwrap_or(i64::MIN);
            let hi = s.hi.eval(self.params).unwrap_or(i64::MAX);
            if i < lo || i > hi {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowchart::LoopDescriptor;
    use crate::schedule::{schedule_module, ScheduleOptions};
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;

    fn params(pairs: &[(&str, i64)]) -> FxHashMap<Symbol, i64> {
        pairs.iter().map(|&(n, v)| (Symbol::intern(n), v)).collect()
    }

    #[test]
    fn relaxation_v1_schedule_validates() {
        let m = frontend(crate::testprogs::RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        validate_flowchart(&m, &r.flowchart, &params(&[("M", 4), ("maxK", 5)]))
            .expect("Figure 6 schedule is valid");
    }

    #[test]
    fn relaxation_v2_schedule_validates() {
        let m = frontend(crate::testprogs::RELAXATION_V2).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        validate_flowchart(&m, &r.flowchart, &params(&[("M", 4), ("maxK", 5)]))
            .expect("Figure 7 schedule is valid");
    }

    #[test]
    fn wrong_doall_is_caught() {
        // Build an intentionally wrong schedule for Gauss–Seidel: parallel I
        // where the dependence demands iteration.
        let m = frontend(crate::testprogs::RELAXATION_V2).unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let mut fc = r.flowchart.clone();
        // Flip every DO to DOALL.
        fn flip(items: &mut [Descriptor]) {
            for d in items {
                if let Descriptor::Loop(LoopDescriptor { kind, body, .. }) = d {
                    *kind = LoopKind::Doall;
                    flip(body);
                }
            }
        }
        flip(&mut fc.items);
        let err = validate_flowchart(&m, &fc, &params(&[("M", 4), ("maxK", 5)]))
            .expect_err("flipped schedule must fail");
        assert!(err.message.contains("before it is written"), "{err}");
    }

    #[test]
    fn reordered_equations_are_caught() {
        let m = frontend(
            "T: module (n: int): [y: real];
             var a, b: real;
             define
                a = 1.0;
                b = a + 1.0;
                y = b;
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let r = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        validate_flowchart(&m, &r.flowchart, &params(&[("n", 1)])).unwrap();
        // Reverse the order: b reads a before it is written.
        let mut fc = r.flowchart.clone();
        fc.items.reverse();
        assert!(validate_flowchart(&m, &fc, &params(&[("n", 1)])).is_err());
    }
}
