//! Virtual-dimension analysis (paper Section 3.4).
//!
//! > "A data node dimension is virtual if the dimension is mapped to a
//! > 'window' of elements, and the width of the window is smaller than the
//! > PS declared size."
//!
//! While Schedule-Component schedules a dimension of component `Mi`, every
//! *local* data node `Nr` in `Mi` is examined: the scheduled dimension is
//! marked virtual when each read edge out of `Nr` is either
//!
//! 1. an `I` / `I - constant` reference at that dimension whose target is
//!    inside `Mi`, or
//! 2. an edge leaving the component whose subscript at that dimension is the
//!    *upper bound* of the dimension's subrange (only the last plane is used
//!    outside the loop).
//!
//! The window width is `1 + max offset` over the form-1 references (2 for
//! the Relaxation array `A`, 3 for the transformed `A'` of Section 4).
//!
//! The analysis must inspect *all* read edges — including edges deactivated
//! while scheduling outer dimensions — because storage must accommodate
//! every reference in the program, not just the ones still active.
//!
//! One soundness refinement over the paper's literal wording: a dimension
//! is only windowed when every in-component reference has a **zero offset
//! in all previously scheduled (outer) dimensions**. A reference like
//! `t[I-1, J]` (outer offset 1) reaches back across a full sweep of the
//! inner `J` loop, so a `J` window of 2 would have evicted the element; the
//! paper's running example never exhibits this case, but the 2-D wavefront
//! table does, and the runtime's write checker catches the eviction.

use crate::dims::DimMatch;
use crate::memory::MemoryPlan;
use crate::schedule::SchedState;
use ps_depgraph::{DepGraph, DepNodeKind, EdgeKind, SubscriptForm};
use ps_graph::NodeId;
use ps_lang::hir::{DataKind, HirModule, LhsSub};
use ps_support::FxHashSet;

/// Run the analysis for one scheduled dimension of one component, recording
/// windows into `memory`. `state` carries which dimensions are already
/// scheduled (the enclosing loops).
pub fn analyze(
    module: &HirModule,
    dg: &DepGraph,
    state: &SchedState,
    comp: &FxHashSet<NodeId>,
    m: &DimMatch,
    memory: &mut MemoryPlan,
) {
    for (&node, &dim) in &m.data_pos {
        let DepNodeKind::Data(data_id) = dg.node_kind(node) else {
            continue;
        };
        // Only local variables are windowed; parameters arrive whole and
        // results leave whole (the paper's NewA footnote).
        if module.data[data_id].kind != DataKind::Local {
            continue;
        }

        let mut ok = true;
        let mut max_offset: i64 = 0;
        // All read edges out of this data node, active or deleted.
        for e in dg.graph.edge_ids() {
            let edge = dg.graph.edge(e);
            if edge.kind != EdgeKind::Read {
                continue;
            }
            let (src, tgt) = dg.graph.edge_endpoints(e);
            if src != node {
                continue;
            }
            let label = &edge.labels[dim];
            if comp.contains(&tgt) {
                // Form 1: I or I - constant, target inside the component.
                match label.form {
                    SubscriptForm::Identity => {}
                    SubscriptForm::OffsetBack => {
                        max_offset = max_offset.max(-label.delta);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                // Soundness: the reference must not reach across an outer
                // (already scheduled) loop iteration — an outer offset
                // means the inner window has cycled by the time of use.
                for (outer, l) in edge.labels.iter().enumerate() {
                    if outer != dim
                        && state.is_data_scheduled(node, outer)
                        && !(l.form == SubscriptForm::Identity)
                    {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    break;
                }
            } else {
                // Form 2: reference from outside must read the last plane.
                if !(label.form == SubscriptForm::Constant && label.at_upper_bound) {
                    ok = false;
                    break;
                }
            }
        }

        // Initialization writes from outside the component (eq.1's
        // `A[1] = InitialA`) land before the loop runs; they are compatible
        // with a window only when they write a single constant plane within
        // window distance of the loop's first iteration. (A Var-plane
        // initializer like the table's `t[I,1] = 1` pre-writes many planes,
        // which the window would evict before the loop reads them.)
        if ok {
            let loop_lo = &module.subranges[m.subrange].lo;
            for e in dg.graph.edge_ids() {
                let edge = dg.graph.edge(e);
                if edge.kind != EdgeKind::Def {
                    continue;
                }
                let (src, tgt) = dg.graph.edge_endpoints(e);
                if tgt != node || comp.contains(&src) {
                    continue;
                }
                let DepNodeKind::Equation(eq_id) = dg.node_kind(src) else {
                    continue;
                };
                match module.equations[eq_id].lhs_subs.get(dim) {
                    Some(LhsSub::Const(c)) => match loop_lo.const_difference(c) {
                        Some(k) if k >= 0 && k <= max_offset => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    },
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }

        if ok {
            memory.set_window(data_id, dim, 1 + max_offset);
        }
    }
}
