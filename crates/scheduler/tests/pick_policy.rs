//! Ablation: the dimension pick policy changes loop nesting (declaration
//! order vs prefer-parallel), both producing valid schedules.

use ps_depgraph::build_depgraph;
use ps_lang::frontend;
use ps_scheduler::{schedule_module, validate_flowchart, PickPolicy, ScheduleOptions};
use ps_support::{FxHashMap, Symbol};

/// Recursive in I only; J is free. Declaration order schedules I first
/// (inner DOALL J); prefer-parallel hoists the DOALL J outside.
const COLUMN_RECURRENCE: &str = "
    T: module (n: int; init: array[J] of real): [y: real];
    type I = 2 .. n; J = 1 .. n;
    var a: array [1 .. n, 1 .. n] of real;
    define
        a[1] = init;
        a[I, J] = a[I-1, J] * 0.5;
        y = a[n, n];
    end T;
";

fn compact(
    src: &str,
    pick: PickPolicy,
) -> (ps_lang::HirModule, String, ps_scheduler::ScheduleResult) {
    let m = frontend(src).unwrap();
    let dg = build_depgraph(&m);
    let r = schedule_module(
        &m,
        &dg,
        ScheduleOptions {
            pick,
            ..Default::default()
        },
    )
    .unwrap();
    let s = r.flowchart.compact(&|e| m.equations[e].label.clone());
    (m, s, r)
}

#[test]
fn declaration_order_puts_do_outside() {
    let (_, s, _) = compact(COLUMN_RECURRENCE, PickPolicy::DeclarationOrder);
    assert!(s.contains("DO I (DOALL J (eq.2))"), "{s}");
}

#[test]
fn prefer_parallel_hoists_doall() {
    let (_, s, _) = compact(COLUMN_RECURRENCE, PickPolicy::PreferParallel);
    assert!(s.contains("DOALL J (DO I (eq.2))"), "{s}");
}

#[test]
fn both_policies_validate() {
    let mut params = FxHashMap::default();
    params.insert(Symbol::intern("n"), 7i64);
    for pick in [PickPolicy::DeclarationOrder, PickPolicy::PreferParallel] {
        let (m, _, r) = compact(COLUMN_RECURRENCE, pick);
        validate_flowchart(&m, &r.flowchart, &params).unwrap_or_else(|e| panic!("{pick:?}: {e}"));
    }
}

#[test]
fn policies_agree_when_no_choice_exists() {
    // Relaxation v1: K must come first either way (I/J have I+1/J+1 refs).
    let src = "
        R: module (InitialA: array[I,J] of real; M: int; maxK: int):
            [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end R;
    ";
    let (_, a, _) = compact(src, PickPolicy::DeclarationOrder);
    let (_, b, _) = compact(src, PickPolicy::PreferParallel);
    assert_eq!(a, b);
}
