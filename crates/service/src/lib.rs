//! `ps-service` — an embeddable concurrent solve service over the
//! compile-once / run-many execution stack.
//!
//! The paper's scheduling model analyzes a nonprocedural program once and
//! executes it many times; `ps_runtime::Program` is that artifact, and
//! this crate is the subsystem that multiplexes **many independent solve
//! requests from many clients** over a cache of such artifacts:
//!
//! * [`Registry`] — the compile-once cache, keyed by
//!   `(source hash, RuntimeOptions)`. Reads are **lock-free** (an
//!   RCU-style published snapshot; see [`registry`]), the table is
//!   LRU-bounded, and evicted programs stay alive for their in-flight
//!   requests through `Arc`s.
//! * [`Service`] — a request queue drained by worker threads.
//!   [`Service::submit`] returns a [`ResponseHandle`] immediately;
//!   requests sharing a program are **micro-batched** onto one pooled
//!   run-slot session, and a panicking request is isolated at the request
//!   boundary (its handle resolves to [`SolveError::Panicked`]; the
//!   worker, the slot pool, and every other request carry on).
//! * [`ServiceStats`] — per-service counters: compiles, cache hits and
//!   evictions, queue depth, batch sizes, and p50/p99 latency from a
//!   lock-free log₂ histogram.
//! * [`proto`] — the newline-delimited wire protocol the `ps-serve` TCP
//!   front-end speaks (requests and load generation live in
//!   `ps-core/src/bin/ps_serve.rs`).
//!
//! # Deadlines, shedding, and fault injection
//!
//! Every request can carry a deadline — per service via
//! [`ServiceOptions::default_deadline`], per request via
//! [`Service::submit_with_deadline`] — backed by a
//! [`ps_executor::CancelToken`]:
//!
//! * a request whose deadline passed while it was still **queued** is shed
//!   at dequeue with [`SolveError::DeadlineExceeded`] and never executes
//!   (counted in [`ServiceStats::deadline_expired`]);
//! * a request that times out **mid-solve** is cancelled cooperatively at
//!   the executor's chunk boundaries — the pool's `cancelled_chunks`
//!   counter records the skipped work, and the shared pool is *not*
//!   poisoned: the next solve runs normally;
//! * [`ResponseHandle::wait_timeout`] bounds the caller's wait without
//!   consuming the handle, and [`ResponseHandle::cancel`] abandons a
//!   request explicitly.
//!
//! [`Service::shutdown`] still drains every accepted request, but the
//! drain is bounded by [`ServiceOptions::drain_timeout`]: past it, the
//! remaining queue is answered with [`SolveError::Shutdown`] instead of
//! holding the process hostage.
//!
//! To *prove* the degradation story, [`ServiceOptions::faults`] takes a
//! seeded [`ps_support::faults::FaultInjector`]: worker panics, slow
//! solves, and registry compile failures fire at configured per-mille
//! rates from one LCG, so the chaos suite (`tests/chaos.rs`) can replay
//! any failing schedule from its seed.
//!
//! # Observability
//!
//! The service is instrumented end to end with [`ps_trace`], and the
//! instrumentation is **always compiled in**: while tracing is disabled
//! (the default) every probe is a single relaxed atomic load with zero
//! allocation, so there is no feature flag to forget and no "debug build"
//! to reproduce on.
//!
//! Call [`ps_trace::enable`] (or run `ps-serve --trace-out FILE`) and the
//! full request lifecycle lands in per-thread lock-free rings:
//!
//! * **submit** mints a span id ([`ResponseHandle::trace_span`]) and emits
//!   `Enqueue`; the worker that picks the request up emits `Dequeue`,
//!   `QueueWait`, and `Batch`;
//! * the **registry** emits `RegistryHit`/`RegistryMiss` instants and a
//!   `Compile` span; the runtime artifact emits `SpecHit`/`SpecBuild` for
//!   its parameter-layout cache;
//! * each **solve** runs under a `Solve` span carrying the request's span
//!   id and the program's interned module-name label; inside it the
//!   executor emits per-region `Region`/`Publish` spans and per-chunk
//!   `Chunk`/`Steal`/`Nested`/`Cancel` events;
//! * injected **faults** emit `Fault` instants, and a panicking solve
//!   emits `Panic` and triggers the [`ps_trace::flight`] recorder: the
//!   last events of every thread become a structured postmortem dump.
//!
//! Aggregates ride along in two forms: [`ServiceStats::stages`] exposes
//! per-stage log₂ histograms (queue wait, compile, specialize, solve,
//! reply) with geometric-midpoint p50/p99, and `ps-serve` carries the
//! same snapshot in its wire `stats` reply. Traces written by
//! `--trace-out` are Chrome `trace_event` JSON — open them in
//! `chrome://tracing`/Perfetto or summarize with the `ps-trace` CLI.
//! See `examples/trace_a_request.rs` in `ps-core` for a guided walk
//! through one request's span tree.
//!
//! # Embedding the service
//!
//! ```
//! use ps_service::{Service, ServiceOptions, SolveRequest};
//! use ps_runtime::Inputs;
//!
//! let service = Service::new(ServiceOptions {
//!     workers: 2,
//!     ..Default::default()
//! });
//!
//! // Compile once (warms the registry), submit many.
//! let key = service
//!     .register(
//!         "Compound: module (rate: real; n: int): [final: real];
//!          type K = 2 .. n;
//!          var balance: array [1 .. n] of real;
//!          define
//!             balance[1] = 1.0;
//!             balance[K] = balance[K-1] * (1.0 + rate);
//!             final = balance[n];
//!          end Compound;",
//!     )
//!     .unwrap();
//!
//! let handles: Vec<_> = (1..=8)
//!     .map(|i| {
//!         service.submit(SolveRequest::new(
//!             key.clone(),
//!             Inputs::new().set_real("rate", 0.5).set_int("n", 2 + i),
//!         ))
//!     })
//!     .collect();
//! for (i, h) in handles.into_iter().enumerate() {
//!     let out = h.wait().unwrap();
//!     let expected = 1.5f64.powi(i as i32 + 2);
//!     assert!((out.scalar("final").as_real() - expected).abs() < 1e-9);
//! }
//!
//! let stats = service.stats();
//! assert_eq!(stats.compiles, 1, "one artifact served every request");
//! assert_eq!(stats.responses, 8);
//! assert!(stats.cache_hits >= 1, "warm path hits the registry");
//! ```

pub mod program;
pub mod proto;
pub mod registry;
pub mod service;
pub mod stats;

pub use program::{BatchSession, CompiledProgram};
pub use registry::{ProgramKey, Registry};
pub use service::{ResponseHandle, Service, ServiceOptions, SolveRequest};
pub use stats::ServiceStats;

/// Failure compiling a program into the registry.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// Front end or scheduler rejected the source (rendered diagnostics).
    Compile(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile(msg) => write!(f, "compile: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-request failure delivered through a [`ResponseHandle`].
#[derive(Clone, Debug)]
pub enum SolveError {
    /// The request's program failed to compile.
    Compile(String),
    /// The solve reported a runtime error (missing input, bad bound, ...).
    Runtime(String),
    /// The solve panicked; the panic was caught at the request boundary.
    Panicked(String),
    /// The request queue was full ([`ServiceOptions::queue_cap`]); the
    /// request was shed instead of growing the queue without bound.
    Busy,
    /// The request's deadline passed before it completed: shed unexecuted
    /// at dequeue, or cancelled mid-solve at an executor chunk boundary.
    DeadlineExceeded,
    /// The service was shut down before the request was accepted.
    Shutdown,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Compile(msg) => write!(f, "compile: {msg}"),
            SolveError::Runtime(msg) => write!(f, "runtime: {msg}"),
            SolveError::Panicked(msg) => write!(f, "panicked: {msg}"),
            SolveError::Busy => write!(f, "service queue is full"),
            SolveError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SolveError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SolveError {}
