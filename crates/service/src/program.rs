//! The owning compile artifact cached by the [`crate::Registry`].
//!
//! `ps_runtime::Program<'m>` borrows its module and flowchart — the right
//! shape for callers that hold a `Compilation` on the stack, but a serving
//! registry must *own* what it caches. [`CompiledProgram`] closes that gap:
//! it owns the HIR module and schedule in stable heap allocations and keeps
//! the borrowing `Program` next to them, exposing only owning or
//! `&self`-scoped APIs so the internal lifetime never escapes.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::ServiceError;
use ps_depgraph::build_depgraph;
use ps_lang::{frontend, HirModule};
use ps_runtime::store::RuntimeError;
use ps_runtime::{Inputs, Outputs, RunSession, RuntimeOptions};
use ps_scheduler::{schedule_module, ScheduleOptions, ScheduleResult};
use ps_trace::StageSet;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// One compiled, reusable, *owned* solve artifact: the HIR module, its
/// schedule, and the tape-lowered [`ps_runtime::Program`] built from them.
///
/// Construction runs the front end, dependence analysis, scheduling, store
/// layout planning, and tape lowering exactly once; [`CompiledProgram::run`]
/// and [`CompiledProgram::session`] then serve any number of concurrent
/// requests (`&CompiledProgram` is `Send + Sync`).
pub struct CompiledProgram {
    /// Borrows the `module`/`sched` allocations below. `ManuallyDrop` so
    /// [`Drop`] can order it strictly before freeing its referents.
    program: std::mem::ManuallyDrop<ps_runtime::Program<'static>>,
    /// Leaked owners of the allocations `program` borrows, reclaimed in
    /// [`Drop`]. Raw pointers (not `Box` fields) deliberately: moving a
    /// `Box` asserts unique ownership and would invalidate the borrows
    /// under Stacked Borrows; `*mut` carries no such assertion.
    sched: *mut ScheduleResult,
    module: *mut HirModule,
    source: Arc<str>,
    options: RuntimeOptions,
    /// Last-use tick maintained by the registry (its LRU key).
    pub(crate) touched: AtomicU64,
    /// Interned [`ps_trace::label`] id of the module name, carried by the
    /// artifact's `Solve`/`Panic` trace events.
    trace_label: u64,
}

// SAFETY: the raw pointers are uniquely owned by this struct (created by
// `Box::into_raw`, freed only in `Drop`) and only ever reborrowed shared;
// every pointee — and the `Program` built over them — is itself
// `Send + Sync` (`_assert_components_send_sync` proves it at compile
// time), so sharing or moving the artifact across threads is sound.
unsafe impl Send for CompiledProgram {}
unsafe impl Sync for CompiledProgram {}

#[allow(dead_code)]
fn _assert_components_send_sync(
    p: &ps_runtime::Program<'static>,
    m: &HirModule,
    s: &ScheduleResult,
) {
    fn takes<T: Send + Sync>(_: &T) {}
    takes(p);
    takes(m);
    takes(s);
}

impl CompiledProgram {
    /// Compile `source` through the pipeline (front end → dependence graph
    /// → schedule → tape lowering) into an owned artifact.
    pub fn compile(
        source: Arc<str>,
        options: RuntimeOptions,
    ) -> Result<Arc<CompiledProgram>, ServiceError> {
        CompiledProgram::compile_with_sink(source, options, None)
    }

    /// Like [`CompiledProgram::compile`], additionally wiring the inner
    /// program's specialization timings into a shared [`StageSet`] (the
    /// registry passes the service's set here).
    pub fn compile_with_sink(
        source: Arc<str>,
        options: RuntimeOptions,
        sink: Option<Arc<StageSet>>,
    ) -> Result<Arc<CompiledProgram>, ServiceError> {
        // All fallible work happens before anything is leaked.
        let module = frontend(&source).map_err(ServiceError::Compile)?;
        let trace_label = ps_trace::label(module.name.as_str());
        let depgraph = build_depgraph(&module);
        let sched = schedule_module(&module, &depgraph, ScheduleOptions::default())
            .map_err(|e| ServiceError::Compile(e.to_string()))?;
        let module = Box::into_raw(Box::new(module));
        let sched = Box::into_raw(Box::new(sched));
        // SAFETY: `program` borrows `*module` and `*sched` with a
        // fabricated 'static lifetime. This is sound because:
        //  * both allocations are leaked above and freed only by `Drop`,
        //    which drops `program` first — the borrows are dead before the
        //    allocations go away;
        //  * the struct stores raw pointers, so no later `Box` move can
        //    retag (and invalidate) the references `program` holds;
        //  * no public API lets the fabricated 'static lifetime escape:
        //    `run` returns owned `Outputs`, `session`/`module` tie their
        //    results to `&self`, which in turn keeps the `Arc` alive.
        let program = unsafe {
            ps_runtime::Program::new(&*module, &(*sched).flowchart, &(*sched).memory, options)
        };
        if let Some(sink) = sink {
            program.set_stage_sink(sink);
        }
        Ok(Arc::new(CompiledProgram {
            program: std::mem::ManuallyDrop::new(program),
            sched,
            module,
            source,
            options,
            touched: AtomicU64::new(0),
            trace_label,
        }))
    }

    /// The interned [`ps_trace::label()`] id of this artifact's module name.
    pub fn trace_label(&self) -> u64 {
        self.trace_label
    }

    /// Execute one run. Reentrant and thread-safe; run state is pooled
    /// inside the artifact.
    pub fn run(&self, inputs: &Inputs, executor: &dyn Executor) -> Result<Outputs, RuntimeError> {
        self.program.run(inputs, executor)
    }

    /// Claim a pooled run slot for a sequence of runs (a worker's
    /// micro-batch); see [`ps_runtime::Program::session`].
    pub fn session(&self) -> BatchSession<'_> {
        BatchSession(self.program.session())
    }

    /// The checked HIR module this artifact executes.
    pub fn module(&self) -> &HirModule {
        // SAFETY: `module` is a live allocation owned by `self` (freed
        // only in `Drop`); the shared reborrow is bounded by `&self`.
        unsafe { &*self.module }
    }

    /// The source text this artifact was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The runtime options this artifact was compiled with.
    pub fn options(&self) -> RuntimeOptions {
        self.options
    }

    /// Parameter layouts specialized so far (delegates to the inner
    /// program).
    pub fn specialization_count(&self) -> usize {
        self.program.specialization_count()
    }

    /// Parameter layouts currently cached (bounded by
    /// `RuntimeOptions::spec_cache_cap`).
    pub fn spec_cached(&self) -> usize {
        self.program.spec_cached()
    }

    /// Specializations evicted from the bounded per-layout cache.
    pub fn spec_evictions(&self) -> usize {
        self.program.spec_evictions()
    }
}

use ps_executor::Executor;

/// A claimed run slot scoped to one worker batch: wraps
/// [`ps_runtime::RunSession`] so the artifact's internal lifetime stays
/// private. Panic-safe: a request that panics mid-run drops the slot and
/// the next call starts fresh.
pub struct BatchSession<'p>(RunSession<'p, 'static>);

impl BatchSession<'_> {
    /// Execute one run, reusing the session's claimed slot.
    pub fn run(
        &mut self,
        inputs: &Inputs,
        executor: &dyn Executor,
    ) -> Result<Outputs, RuntimeError> {
        self.0.run(inputs, executor)
    }
}

impl Drop for CompiledProgram {
    fn drop(&mut self) {
        // SAFETY: `program` is dropped exactly once and strictly before
        // the allocations it borrows; the pointers were made by
        // `Box::into_raw` in `compile` and are reclaimed exactly once.
        unsafe {
            std::mem::ManuallyDrop::drop(&mut self.program);
            drop(Box::from_raw(self.sched));
            drop(Box::from_raw(self.module));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_executor::Sequential;

    const RECURRENCE: &str = "Compound: module (rate: real; n: int): [final: real];
        type K = 2 .. n;
        var balance: array [1 .. n] of real;
        define
            balance[1] = 1.0;
            balance[K] = balance[K-1] * (1.0 + rate);
            final = balance[n];
        end Compound;";

    #[test]
    fn owned_artifact_runs_after_moves() {
        let prog = CompiledProgram::compile(RECURRENCE.into(), RuntimeOptions::default()).unwrap();
        // Move the Arc around (into a vec, out again): the boxed module
        // and schedule stay put, so the internal borrows stay valid.
        let held = [prog];
        let prog = &held[0];
        for (rate, n) in [(0.5f64, 10i64), (0.25, 20)] {
            let out = prog
                .run(
                    &Inputs::new().set_real("rate", rate).set_int("n", n),
                    &Sequential,
                )
                .unwrap();
            let expected = (1.0 + rate).powi(n as i32 - 1);
            assert!((out.scalar("final").as_real() - expected).abs() < 1e-9);
        }
        assert_eq!(prog.specialization_count(), 2, "n ∈ {{10, 20}}");
    }

    #[test]
    fn compile_errors_are_reported_not_cached() {
        let Err(err) = CompiledProgram::compile("not a module".into(), RuntimeOptions::default())
        else {
            panic!("garbage must not compile");
        };
        let ServiceError::Compile(msg) = err;
        assert!(!msg.is_empty());
    }

    #[test]
    fn sessions_share_the_artifact_across_threads() {
        let prog = CompiledProgram::compile(RECURRENCE.into(), RuntimeOptions::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let prog = &prog;
                scope.spawn(move || {
                    let mut session = prog.session();
                    for i in 0..4 {
                        let n = 4 + ((t + i) % 3) as i64;
                        let out = session
                            .run(
                                &Inputs::new().set_real("rate", 1.0).set_int("n", n),
                                &Sequential,
                            )
                            .unwrap();
                        assert!(
                            (out.scalar("final").as_real() - 2.0f64.powi(n as i32 - 1)).abs()
                                < 1e-9
                        );
                    }
                });
            }
        });
    }
}
