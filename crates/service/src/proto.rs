//! The newline-delimited wire protocol spoken by the `ps-serve` TCP
//! front-end (and reusable by any embedding).
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! solve <program> [name=value]...   → ok <name>=<value>...  |  err <msg>
//! stats                             → ok requests=... compiles=...
//! quit                              → (closes the connection)
//! shutdown                          → ok bye   (stops the server)
//! ```
//!
//! Scalar values: `42` (int), `1.5`/`2e3` (real, anything that is not an
//! int), `true`/`false` (bool). 1-D arrays: `@lo:hi:v1,v2,...` — an int
//! array when every element parses as an int, real otherwise. Response
//! reals round-trip (Rust's shortest-representation float formatting).

use ps_runtime::value::OwnedBuffer;
use ps_runtime::{Inputs, Outputs, OwnedArray, Value};
use std::fmt::Write as _;

/// One parsed request line.
#[derive(Clone, Debug)]
pub enum WireCommand {
    Solve { program: String, inputs: Inputs },
    Stats,
    Quit,
    Shutdown,
}

/// Parse one request line (the line terminator already stripped), with no
/// bound on declared array sizes. Prefer [`parse_request_limited`]
/// anywhere the line comes from an untrusted peer.
pub fn parse_request(line: &str) -> Result<WireCommand, String> {
    parse_request_limited(line, usize::MAX)
}

/// Parse one request line, rejecting any `@lo:hi` array header whose
/// declared element count could not possibly fit in a `max_frame`-byte
/// line. The check runs *before* any allocation sized by the header, so a
/// hostile `@1:9999999999999999` cannot reserve memory it never sends.
pub fn parse_request_limited(line: &str, max_frame: usize) -> Result<WireCommand, String> {
    let mut parts = line.split_whitespace();
    match parts.next() {
        None => Err("empty request".into()),
        Some("stats") => Ok(WireCommand::Stats),
        Some("quit") => Ok(WireCommand::Quit),
        Some("shutdown") => Ok(WireCommand::Shutdown),
        Some("solve") => {
            let program = parts
                .next()
                .ok_or_else(|| "solve: missing program name".to_string())?
                .to_string();
            let mut inputs = Inputs::new();
            for kv in parts {
                let (name, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("solve: `{kv}` is not name=value"))?;
                inputs = bind(inputs, name, value, max_frame)?;
            }
            Ok(WireCommand::Solve { program, inputs })
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn bind(inputs: Inputs, name: &str, value: &str, max_frame: usize) -> Result<Inputs, String> {
    if let Some(rest) = value.strip_prefix('@') {
        let mut it = rest.splitn(3, ':');
        let (lo, hi, elems) = (it.next(), it.next(), it.next());
        let (Some(lo), Some(hi), Some(elems)) = (lo, hi, elems) else {
            return Err(format!("array `{name}`: expected @lo:hi:v1,v2,..."));
        };
        let lo: i64 = lo.parse().map_err(|_| format!("array `{name}`: bad lo"))?;
        let hi: i64 = hi.parse().map_err(|_| format!("array `{name}`: bad hi"))?;
        // Checked width: `hi - lo + 1` overflows i64 for hostile bound
        // pairs (e.g. lo = i64::MIN), which must be a parse error, not a
        // debug-build panic.
        let want: usize = match hi.checked_sub(lo).and_then(|d| d.checked_add(1)) {
            Some(n) if n <= 0 => 0,
            Some(n) => n as usize,
            None => {
                return Err(format!("array `{name}`: range {lo}..{hi} is out of range"));
            }
        };
        // Pre-validate against the frame limit before touching `elems`:
        // every element costs at least two bytes on the wire (a digit and
        // its separator), so more than max_frame/2 + 1 of them cannot fit
        // in a legal line and the header is lying.
        if want > max_frame / 2 + 1 {
            return Err(format!(
                "array `{name}`: {want} elements exceed the frame limit"
            ));
        }
        let raw: Vec<&str> = if elems.is_empty() {
            Vec::new()
        } else {
            elems.split(',').collect()
        };
        if raw.len() != want {
            return Err(format!(
                "array `{name}`: {lo}..{hi} needs {want} elements, got {}",
                raw.len()
            ));
        }
        if let Ok(ints) = raw
            .iter()
            .map(|s| s.parse::<i64>())
            .collect::<Result<Vec<_>, _>>()
        {
            return Ok(inputs.set_array(name, OwnedArray::int(vec![(lo, hi)], ints)));
        }
        let reals = raw
            .iter()
            .map(|s| s.parse::<f64>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| format!("array `{name}`: non-numeric element"))?;
        return Ok(inputs.set_array(name, OwnedArray::real(vec![(lo, hi)], reals)));
    }
    if value == "true" || value == "false" {
        return Ok(inputs.set_bool(name, value == "true"));
    }
    if let Ok(i) = value.parse::<i64>() {
        return Ok(inputs.set_int(name, i));
    }
    let r: f64 = value
        .parse()
        .map_err(|_| format!("`{name}`: cannot parse value `{value}`"))?;
    Ok(inputs.set_real(name, r))
}

fn push_value(out: &mut String, v: Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Real(r) => {
            // Force a distinguishing mark so the value parses back as
            // real: whatever the shortest-roundtrip formatting produced,
            // a digits-only rendering (any whole real, at any magnitude)
            // gets a `.0` appended.
            let start = out.len();
            let _ = write!(out, "{r}");
            // `NaN`/`inf` already parse as reals; only digits-only
            // renderings need the mark.
            if !out[start..].contains(['.', 'e', 'E', 'n', 'i', 'N']) {
                out.push_str(".0");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Render a successful solve as one `ok` line: scalars then arrays, each
/// group sorted by name (the response is deterministic).
pub fn format_outputs(outputs: &Outputs) -> String {
    let mut line = String::from("ok");
    let mut scalars: Vec<(&String, &Value)> = outputs.scalars.iter().collect();
    scalars.sort_by_key(|(name, _)| name.as_str());
    for (name, &v) in scalars {
        let _ = write!(line, " {name}=");
        push_value(&mut line, v);
    }
    let mut arrays: Vec<(&String, &OwnedArray)> = outputs.arrays.iter().collect();
    arrays.sort_by_key(|(name, _)| name.as_str());
    for (name, a) in arrays {
        if a.dims.len() != 1 {
            // The wire format is 1-D; flatten with the full bounds list.
            let _ = write!(line, " {name}=<{}-d array of {}>", a.dims.len(), a.len());
            continue;
        }
        let (lo, hi) = a.dims[0];
        let _ = write!(line, " {name}=@{lo}:{hi}:");
        match &a.data {
            OwnedBuffer::Real(v) => {
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    push_value(&mut line, Value::Real(*x));
                }
            }
            OwnedBuffer::Int(v) => {
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{x}");
                }
            }
            OwnedBuffer::Bool(v) => {
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{x}");
                }
            }
        }
    }
    line
}

/// Render a failure as one `err` line (newlines flattened so the framing
/// survives multi-line compiler diagnostics).
pub fn format_error(msg: &str) -> String {
    let flat: String = msg
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("err {}", flat.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_line_parses_scalars_and_arrays() {
        let cmd =
            parse_request("solve heat_1d M=4 maxK=6 alpha=0.25 u0=@0:5:0.0,1,2,3,4,0").unwrap();
        let WireCommand::Solve { program, inputs } = cmd else {
            panic!("expected solve");
        };
        assert_eq!(program, "heat_1d");
        assert_eq!(
            inputs.scalar(ps_support::Symbol::intern("M")),
            Some(Value::Int(4))
        );
        assert_eq!(
            inputs.scalar(ps_support::Symbol::intern("alpha")),
            Some(Value::Real(0.25))
        );
        let u0 = inputs.array(ps_support::Symbol::intern("u0")).unwrap();
        assert_eq!(u0.dims, vec![(0, 5)]);
        // Mixed elements force a real array.
        assert_eq!(u0.get(&[2]), Value::Real(2.0));
    }

    #[test]
    fn int_arrays_stay_int() {
        let WireCommand::Solve { inputs, .. } =
            parse_request("solve gather n=3 perm=@1:3:3,1,2").unwrap()
        else {
            panic!("expected solve");
        };
        let perm = inputs.array(ps_support::Symbol::intern("perm")).unwrap();
        assert_eq!(perm.get(&[1]), Value::Int(3));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("warp 9").is_err());
        assert!(parse_request("solve").is_err());
        assert!(parse_request("solve p x").is_err());
        assert!(
            parse_request("solve p xs=@1:3:1,2").is_err(),
            "length mismatch"
        );
        assert!(parse_request("solve p x=abc").is_err());
    }

    #[test]
    fn hostile_array_headers_are_structured_errors() {
        // Overflowing bound pairs must not panic (hi - lo + 1 overflows).
        for line in [
            "solve p xs=@-9223372036854775808:9223372036854775807:1",
            "solve p xs=@0:9223372036854775807:1",
            "solve p xs=@9223372036854775807:-9223372036854775808:1",
        ] {
            assert!(parse_request(line).is_err(), "{line}");
        }
        // A header declaring more elements than any max_frame-byte line
        // could carry is rejected before the element Vec is built.
        let err = parse_request_limited("solve p xs=@1:999999:1,2", 4096).unwrap_err();
        assert!(err.contains("frame limit"), "{err}");
        // The same header is merely a length mismatch with no limit.
        let err = parse_request("solve p xs=@1:999999:1,2").unwrap_err();
        assert!(err.contains("needs"), "{err}");
        // Reversed (empty) ranges parse fine under a limit.
        assert!(parse_request_limited("solve p xs=@3:1:", 4096).is_ok());
    }

    #[test]
    fn outputs_round_trip_through_the_wire_format() {
        let mut out = Outputs::default();
        out.scalars.insert("y".into(), Value::Real(0.5));
        out.scalars.insert("k".into(), Value::Int(-3));
        out.arrays.insert(
            "xs".into(),
            OwnedArray::real(vec![(1, 3)], vec![1.0, 2.5, -0.25]),
        );
        let line = format_outputs(&out);
        assert_eq!(line, "ok k=-3 y=0.5 xs=@1:3:1.0,2.5,-0.25");
        // Whole reals keep a mark so they parse back as reals — at every
        // magnitude (2e15 formats digits-only without the guard).
        for (v, want) in [
            (2.0, "ok y=2.0"),
            (2e15, "ok y=2000000000000000.0"),
            (f64::NEG_INFINITY, "ok y=-inf"),
            (f64::NAN, "ok y=NaN"),
        ] {
            let mut whole = Outputs::default();
            whole.scalars.insert("y".into(), Value::Real(v));
            assert_eq!(format_outputs(&whole), want);
        }
    }

    #[test]
    fn errors_are_single_line() {
        let e = format_error("front end:\nline 1: bad\nline 2: worse");
        assert!(!e.contains('\n'));
        assert!(e.starts_with("err "));
    }

    #[test]
    fn control_commands_parse() {
        assert!(matches!(parse_request("stats"), Ok(WireCommand::Stats)));
        assert!(matches!(parse_request("quit"), Ok(WireCommand::Quit)));
        assert!(matches!(
            parse_request("shutdown"),
            Ok(WireCommand::Shutdown)
        ));
    }
}
