//! The compile-once Program registry: lock-free reads, LRU-bounded.
//!
//! The hot path of a solve service is "look up the artifact for this
//! request's `(source, options)` key" — executed once per micro-batch,
//! concurrently from every worker. The registry keeps those lookups
//! **lock-free** with an RCU-style published snapshot:
//!
//! * the live entry table is an immutable snapshot behind an
//!   `AtomicPtr`; a reader increments a reader count, loads the pointer,
//!   scans (capacity is small, a linear probe beats hashing), clones the
//!   entry `Arc`, and decrements — no mutex, no waiting, ever;
//! * writers (compile / evict — the cold path) serialize on a mutex,
//!   publish a new snapshot with a single pointer store, and move the old
//!   table onto a **grace-period retirement list**. Retired tables are
//!   freed in batches whenever a writer observes the reader count at
//!   zero — writers never spin waiting for readers, so a publish
//!   completes in bounded time even under a sustained stream of lock-free
//!   lookups. Entry `Arc`s make eviction safe for in-flight requests: an
//!   evicted program dies only when its last request completes.
//!
//! The table is bounded: at capacity the least-recently-used entry (ticks
//! are relaxed atomic stores on the read path) is evicted, so adversarial
//! source diversity cannot grow memory without bound. Keys are
//! `(source hash, RuntimeOptions)`; hash collisions are disambiguated by
//! comparing the source text itself, so two programs can never alias.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::program::CompiledProgram;
use crate::ServiceError;
use ps_runtime::RuntimeOptions;
use ps_support::faults::{FaultInjector, FaultPoint};
use ps_trace::{EvKind, Phase, Stage, StageSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A precomputed registry key: the program source, the runtime options the
/// artifact must be compiled with, and the source hash (computed once at
/// key construction, not per lookup).
#[derive(Clone, Debug)]
pub struct ProgramKey {
    source: Arc<str>,
    options: RuntimeOptions,
    hash: u64,
}

impl ProgramKey {
    pub fn new(source: impl Into<Arc<str>>, options: RuntimeOptions) -> ProgramKey {
        let source = source.into();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        source.hash(&mut h);
        ProgramKey {
            hash: h.finish(),
            source,
            options,
        }
    }

    pub fn source(&self) -> &Arc<str> {
        &self.source
    }

    pub fn options(&self) -> RuntimeOptions {
        self.options
    }
}

impl PartialEq for ProgramKey {
    fn eq(&self, other: &ProgramKey) -> bool {
        self.hash == other.hash && self.options == other.options && self.source == other.source
    }
}

impl Eq for ProgramKey {}

/// One immutable published generation of the entry table.
struct Snapshot {
    entries: Vec<(u64, Arc<CompiledProgram>)>,
}

/// An unpublished snapshot awaiting reader quiescence before it can be
/// freed.
struct RetiredSnapshot(*mut Snapshot);

// SAFETY: a retired snapshot is exclusively owned by the retirement list
// (it was unpublished by the writer that pushed it); the raw pointer is
// only dereferenced to free the box, after quiescence proves no reader
// still scans it.
unsafe impl Send for RetiredSnapshot {}

/// The bounded compile-once cache. See the module docs for the read/write
/// protocol.
pub struct Registry {
    /// The current snapshot; readers only ever load this pointer.
    published: AtomicPtr<Snapshot>,
    /// In-flight lock-free readers; a writer frees retired snapshots only
    /// after observing zero.
    readers: AtomicUsize,
    /// Serializes compile/evict/publish (the cold path).
    writer: Mutex<()>,
    /// Grace-period list: unpublished snapshots whose readers may still be
    /// in flight. Freed in batches at the next zero-reader observation;
    /// growth is bounded by the number of compiles between quiescent
    /// moments (the cold path), never by read traffic.
    retired: Mutex<Vec<RetiredSnapshot>>,
    capacity: usize,
    /// LRU clock: lookups stamp entries with `clock++` (relaxed).
    clock: AtomicU64,
    compiles: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    /// Chaos hook: lets the seeded injector turn a compile into a failure.
    faults: FaultInjector,
    /// Shared per-stage histograms (compile time lands here); also wired
    /// into each compiled artifact so specialization builds report too.
    stages: Option<Arc<StageSet>>,
}

impl Registry {
    /// An empty registry holding at most `capacity` compiled programs
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Registry {
        Registry::with_faults(capacity, FaultInjector::disabled())
    }

    /// Like [`Registry::new`] with a seeded fault injector: the
    /// `CompileFail` point fires on the compile path (after the cache
    /// double-check, before any real compilation work).
    pub fn with_faults(capacity: usize, faults: FaultInjector) -> Registry {
        Registry::with_observability(capacity, faults, None)
    }

    /// Like [`Registry::with_faults`], additionally recording compile and
    /// specialization durations into a shared [`StageSet`] (the service
    /// passes its per-instance set here).
    pub fn with_observability(
        capacity: usize,
        faults: FaultInjector,
        stages: Option<Arc<StageSet>>,
    ) -> Registry {
        Registry {
            published: AtomicPtr::new(Box::into_raw(Box::new(Snapshot {
                entries: Vec::new(),
            }))),
            readers: AtomicUsize::new(0),
            writer: Mutex::new(()),
            retired: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            faults,
            stages,
        }
    }

    /// The lock-free fast path: find `key`'s artifact in the published
    /// snapshot. Counts a cache hit and stamps the entry's LRU tick when
    /// found.
    pub fn lookup(&self, key: &ProgramKey) -> Option<Arc<CompiledProgram>> {
        // SeqCst on the counter and the pointer load gives the writer its
        // quiescence guarantee: once it observes `readers == 0` after
        // publishing, any later reader must observe the new pointer, so
        // the retired snapshot is unreachable and safe to free.
        self.readers.fetch_add(1, Ordering::SeqCst);
        // SAFETY: the snapshot observed here is freed only after the
        // writer has watched `readers` reach zero following its swap;
        // our increment keeps it alive while we scan.
        let snapshot = unsafe { &*self.published.load(Ordering::SeqCst) };
        let found = snapshot
            .entries
            .iter()
            .find(|(h, e)| {
                *h == key.hash && e.options() == key.options && e.source() == &*key.source
            })
            .map(|(_, e)| Arc::clone(e));
        self.readers.fetch_sub(1, Ordering::SeqCst);
        if let Some(e) = &found {
            e.touched.store(
                self.clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            self.hits.fetch_add(1, Ordering::Relaxed);
            ps_trace::emit(EvKind::RegistryHit, Phase::Instant, 0, key.hash, 0);
        }
        found
    }

    /// Return the cached artifact for `key`, compiling (and publishing) it
    /// on first sight. At capacity the least-recently-used entry is
    /// evicted; in-flight users of the evicted artifact keep it alive
    /// through their `Arc`s. Compile failures are returned, not cached.
    pub fn get_or_compile(&self, key: &ProgramKey) -> Result<Arc<CompiledProgram>, ServiceError> {
        if let Some(e) = self.lookup(key) {
            return Ok(e);
        }
        let _writer = self.writer.lock().expect("registry writer poisoned");
        // Double-check under the writer lock: another thread may have
        // compiled this key while we waited (its hit is counted normally).
        if let Some(e) = self.lookup(key) {
            return Ok(e);
        }
        ps_trace::emit(EvKind::RegistryMiss, Phase::Instant, 0, key.hash, 0);
        if self.faults.should_fire(FaultPoint::CompileFail) {
            if ps_trace::enabled() {
                ps_trace::emit(
                    EvKind::Fault,
                    Phase::Instant,
                    0,
                    ps_trace::label("compile_fail"),
                    0,
                );
                ps_trace::flight::record("injected registry compile failure");
            }
            return Err(ServiceError::Compile(
                "injected fault: registry compile failure".into(),
            ));
        }
        let compile_t0 = std::time::Instant::now();
        let _compile_span = ps_trace::span(EvKind::Compile, key.hash, 0);
        let entry = CompiledProgram::compile_with_sink(
            Arc::clone(&key.source),
            key.options,
            self.stages.clone(),
        )?;
        drop(_compile_span);
        if ps_trace::enabled() {
            if let Some(stages) = &self.stages {
                stages.record(Stage::Compile, compile_t0.elapsed());
            }
        }
        entry.touched.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        // Build the successor snapshot: copy the live entries, evict the
        // LRU entry at capacity, append the new one.
        let old_ptr = self.published.load(Ordering::SeqCst);
        // SAFETY: only the writer (serialized by the mutex we hold) ever
        // retires snapshots, so `old_ptr` is alive.
        let mut entries = unsafe { &*old_ptr }.entries.clone();
        if entries.len() >= self.capacity {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, e))| e.touched.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("capacity >= 1 implies entries is nonempty here");
            entries.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.push((key.hash, Arc::clone(&entry)));
        let new_ptr = Box::into_raw(Box::new(Snapshot { entries }));
        self.published.store(new_ptr, Ordering::SeqCst);
        // Grace period instead of a quiescence spin: retire the old table
        // and free whatever the list holds at the next zero-reader
        // observation. A publish therefore completes in bounded time even
        // while readers hammer `lookup` without a gap.
        {
            let mut retired = self.retired.lock().expect("retired list poisoned");
            retired.push(RetiredSnapshot(old_ptr));
            self.reclaim(&mut retired);
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Free every retired snapshot if the readers are quiescent *right
    /// now*; otherwise keep them for a later writer (or `Drop`).
    ///
    /// Sound because a reader increments `readers` *before* loading the
    /// published pointer (both SeqCst): at the instant this load returns
    /// zero, every reader that could have seen a retired pointer has
    /// finished its scan, and all later readers load the current snapshot
    /// — so nothing on the list is reachable any more.
    fn reclaim(&self, retired: &mut Vec<RetiredSnapshot>) {
        if retired.is_empty() {
            return;
        }
        // A handful of bounded samples ride out a momentary reader; if
        // traffic never pauses, the list simply waits for a luckier
        // writer — memory stays bounded by compile count, and we never
        // block the publish.
        for _ in 0..8 {
            if self.readers.load(Ordering::SeqCst) == 0 {
                for snap in retired.drain(..) {
                    // SAFETY: unpublished, and quiescence was observed
                    // after it was retired (see above).
                    unsafe { drop(Box::from_raw(snap.0)) };
                }
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Snapshots currently parked on the grace list (test visibility).
    #[cfg(test)]
    fn retired_len(&self) -> usize {
        self.retired.lock().expect("retired list poisoned").len()
    }

    /// Programs compiled (and published) so far.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Lookups served from the published snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of programs currently cached (≤ capacity).
    pub fn len(&self) -> usize {
        self.readers.fetch_add(1, Ordering::SeqCst);
        // SAFETY: as in `lookup`.
        let n = unsafe { &*self.published.load(Ordering::SeqCst) }
            .entries
            .len();
        self.readers.fetch_sub(1, Ordering::SeqCst);
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        // `&mut self`: no readers can exist; free the final snapshot and
        // anything still parked on the grace list.
        let ptr = *self.published.get_mut();
        // SAFETY: `published` always holds a live Box-allocated snapshot.
        unsafe { drop(Box::from_raw(ptr)) };
        for snap in self
            .retired
            .get_mut()
            .expect("retired list poisoned")
            .drain(..)
        {
            // SAFETY: retired snapshots are exclusively owned by the list.
            unsafe { drop(Box::from_raw(snap.0)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(tag: i64) -> String {
        format!(
            "P{tag}: module (x: real): [y: real];
             define y = x * {tag}.0; end P{tag};"
        )
    }

    #[test]
    fn compile_once_then_hit() {
        let reg = Registry::new(4);
        let key = ProgramKey::new(src(2), RuntimeOptions::default());
        assert!(reg.lookup(&key).is_none());
        let a = reg.get_or_compile(&key).unwrap();
        let b = reg.get_or_compile(&key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call is a cache hit");
        assert_eq!(reg.compiles(), 1);
        assert_eq!(reg.hits(), 1);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let reg = Registry::new(4);
        let source: Arc<str> = src(3).into();
        let fast = ProgramKey::new(Arc::clone(&source), RuntimeOptions::default());
        let checked = ProgramKey::new(
            source,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        );
        let a = reg.get_or_compile(&fast).unwrap();
        let b = reg.get_or_compile(&checked).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "same source, different options");
        assert_eq!(reg.compiles(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let reg = Registry::new(2);
        let keys: Vec<ProgramKey> = (0..3)
            .map(|i| ProgramKey::new(src(i), RuntimeOptions::default()))
            .collect();
        reg.get_or_compile(&keys[0]).unwrap();
        reg.get_or_compile(&keys[1]).unwrap();
        reg.lookup(&keys[0]); // touch 0 so 1 is the LRU
        reg.get_or_compile(&keys[2]).unwrap(); // evicts 1
        assert_eq!(reg.evictions(), 1);
        assert_eq!(reg.len(), 2);
        assert!(reg.lookup(&keys[0]).is_some(), "recently used survives");
        assert!(reg.lookup(&keys[1]).is_none(), "LRU entry evicted");
        // An evicted program recompiles on demand.
        reg.get_or_compile(&keys[1]).unwrap();
        assert_eq!(reg.compiles(), 4);
    }

    #[test]
    fn concurrent_lookups_and_compiles_are_safe() {
        let reg = Arc::new(Registry::new(3));
        let keys: Vec<ProgramKey> = (0..6)
            .map(|i| ProgramKey::new(src(i), RuntimeOptions::default()))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let reg = Arc::clone(&reg);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..60 {
                        // Six keys over a 3-entry cache: constant churn of
                        // concurrent compiles, evictions, and lookups.
                        let key = &keys[(t * 7 + i) % keys.len()];
                        let entry = reg.get_or_compile(key).unwrap();
                        assert_eq!(entry.source(), &**key.source());
                    }
                });
            }
        });
        assert!(reg.len() <= 3, "capacity respected under churn");
        // A working set that *fits* then hits the cache from every thread.
        let (warm_base, hits_base) = (reg.compiles(), reg.hits());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..40 {
                        reg.get_or_compile(&keys[i % 2]).unwrap();
                    }
                });
            }
        });
        let (warm_compiles, warm_hits) = (reg.compiles() - warm_base, reg.hits() - hits_base);
        assert!(
            warm_compiles <= 2,
            "a fitting working set compiles each program at most once more"
        );
        assert!(warm_hits > warm_compiles, "warm traffic hits the cache");
    }

    #[test]
    fn publish_completes_while_a_reader_hammers_get() {
        // Writers must not busy-spin on reader quiescence: with reader
        // threads doing back-to-back lock-free lookups, every publish
        // still completes (retiring the old snapshot to the grace list),
        // and the grace list drains once the readers stop.
        use std::sync::atomic::AtomicBool;
        let reg = Arc::new(Registry::new(8));
        let hot = ProgramKey::new(src(100), RuntimeOptions::default());
        reg.get_or_compile(&hot).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let lookups = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (reg, stop, hot) = (Arc::clone(&reg), Arc::clone(&stop), hot.clone());
                let lookups = Arc::clone(&lookups);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // `hot` may get LRU-evicted by the writer's churn;
                        // the point is sustained lock-free read traffic.
                        let _ = reg.lookup(&hot);
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Don't start publishing until the readers demonstrably hammer.
        while lookups.load(Ordering::Relaxed) < 100 {
            std::thread::yield_now();
        }
        // 30 publishes against the hammering readers; each must finish
        // well inside the deadline (the old spin could stall a writer for
        // as long as read traffic never pauses).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        for i in 0..30 {
            let key = ProgramKey::new(src(i), RuntimeOptions::default());
            reg.get_or_compile(&key).unwrap();
            assert!(
                std::time::Instant::now() < deadline,
                "publish {i} stalled behind lock-free readers"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // With readers quiescent, the next publish reclaims the list.
        let last = ProgramKey::new(src(999), RuntimeOptions::default());
        reg.get_or_compile(&last).unwrap();
        assert_eq!(reg.retired_len(), 0, "grace list drained at quiescence");
        assert!(reg.lookup(&last).is_some(), "entries survive the churn");
    }
}
