//! The concurrent solve service: a request queue, worker threads with
//! micro-batching, and panic isolation at the request boundary.

use crate::registry::{ProgramKey, Registry};
use crate::stats::{LatencyHistogram, ServiceStats};
use crate::{ServiceError, SolveError};
use ps_executor::{CancelToken, Cancelled, Executor, Sequential, ThreadPool};
use ps_runtime::{Inputs, Outputs, RuntimeOptions};
use ps_support::faults::{FaultInjector, FaultPoint};
use ps_support::rng::panic_message;
use ps_trace::{EvKind, Phase, Stage, StageSet};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs for [`Service::new`].
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Worker threads draining the request queue (clamped to ≥ 1). Each
    /// worker serves one micro-batch at a time, so this is the service's
    /// request-level parallelism.
    pub workers: usize,
    /// Intra-solve `DOALL` parallelism: 1 runs each solve sequentially on
    /// its worker (the right default for many small solves); above 1 the
    /// workers share one [`ThreadPool`] handle of this size.
    pub solve_threads: usize,
    /// Programs the registry caches before LRU eviction (clamped to ≥ 1).
    pub registry_capacity: usize,
    /// Most requests a worker batches per program pickup (clamped to ≥ 1).
    pub batch_max: usize,
    /// Admission control: most requests the queue holds before `submit`
    /// sheds load with [`SolveError::Busy`] instead of growing without
    /// bound (clamped to ≥ 1). Shed requests are counted in
    /// [`ServiceStats::rejected`] and never reach a worker.
    pub queue_cap: usize,
    /// Runtime options used by the [`Service::register`] convenience
    /// (requests carry their own options inside their [`ProgramKey`]).
    pub runtime: RuntimeOptions,
    /// Deadline applied to every [`Service::submit`] (none by default).
    /// `submit_with_deadline` overrides it per request. A request past its
    /// deadline at dequeue is shed with [`SolveError::DeadlineExceeded`];
    /// one that expires mid-solve is cancelled at executor chunk
    /// boundaries.
    pub default_deadline: Option<Duration>,
    /// How long [`Service::shutdown`] keeps serving the already-accepted
    /// backlog before answering the remainder with
    /// [`SolveError::Shutdown`] (30 s by default). Bounds shutdown's
    /// wall-clock however deep the queue is.
    pub drain_timeout: Duration,
    /// Seeded fault injection for chaos testing (disabled by default):
    /// worker panics, slow solves, and registry compile failures fire at
    /// the spec's per-mille rates.
    pub faults: FaultInjector,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            workers: 2,
            solve_threads: 1,
            registry_capacity: 32,
            batch_max: 8,
            queue_cap: 1024,
            runtime: RuntimeOptions::default(),
            default_deadline: None,
            drain_timeout: Duration::from_secs(30),
            faults: FaultInjector::disabled(),
        }
    }
}

/// One solve request: which program (by registry key) and its inputs.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    pub key: ProgramKey,
    pub inputs: Inputs,
}

impl SolveRequest {
    pub fn new(key: ProgramKey, inputs: Inputs) -> SolveRequest {
        SolveRequest { key, inputs }
    }
}

/// The filled-exactly-once response cell a handle waits on. `Taken` is a
/// distinct terminal state so a `wait` after `try_take` fails loudly
/// instead of parking on a condvar that can never fire again.
#[derive(Default)]
enum ResponseCell {
    #[default]
    Pending,
    Ready(Result<Outputs, SolveError>),
    Taken,
}

#[derive(Default)]
struct ResponseState {
    cell: Mutex<ResponseCell>,
    ready: Condvar,
}

impl ResponseState {
    fn fulfill(&self, result: Result<Outputs, SolveError>) {
        let mut cell = self.cell.lock().expect("response cell poisoned");
        debug_assert!(
            matches!(*cell, ResponseCell::Pending),
            "a response is fulfilled exactly once"
        );
        *cell = ResponseCell::Ready(result);
        self.ready.notify_all();
    }
}

/// A typed handle to one in-flight solve: block on [`wait`], poll with
/// [`try_take`], or probe with [`is_ready`].
///
/// [`wait`]: ResponseHandle::wait
/// [`try_take`]: ResponseHandle::try_take
/// [`is_ready`]: ResponseHandle::is_ready
pub struct ResponseHandle {
    state: Arc<ResponseState>,
    /// Clone of the request's cancel token ([`ResponseHandle::cancel`]).
    cancel: CancelToken,
    /// The request's trace span id (0 when tracing was disabled at
    /// submit); ties the caller's view to the request's trace events.
    span: u64,
}

impl ResponseHandle {
    /// Block until the response arrives and return it.
    ///
    /// # Panics
    /// When the response was already consumed by [`try_take`] — waiting
    /// for it again would otherwise park forever.
    ///
    /// [`try_take`]: ResponseHandle::try_take
    pub fn wait(self) -> Result<Outputs, SolveError> {
        let mut cell = self.state.cell.lock().expect("response cell poisoned");
        loop {
            match std::mem::replace(&mut *cell, ResponseCell::Taken) {
                ResponseCell::Ready(result) => return result,
                ResponseCell::Taken => {
                    panic!("response was already consumed by try_take")
                }
                ResponseCell::Pending => {
                    *cell = ResponseCell::Pending;
                    cell = self.state.ready.wait(cell).expect("response cell poisoned");
                }
            }
        }
    }

    /// Take the response if it already arrived (non-blocking; returns
    /// `None` both while pending and after the response was taken).
    pub fn try_take(&self) -> Option<Result<Outputs, SolveError>> {
        let mut cell = self.state.cell.lock().expect("response cell poisoned");
        match std::mem::replace(&mut *cell, ResponseCell::Taken) {
            ResponseCell::Ready(result) => Some(result),
            other => {
                *cell = other;
                None
            }
        }
    }

    /// Whether the response has arrived — `true` even after it was
    /// consumed by [`try_take`] (so pollers can distinguish "still
    /// pending" from "done").
    ///
    /// [`try_take`]: ResponseHandle::try_take
    pub fn is_ready(&self) -> bool {
        !matches!(
            *self.state.cell.lock().expect("response cell poisoned"),
            ResponseCell::Pending
        )
    }

    /// Block for at most `timeout` and take the response if it arrived
    /// (`None` on timeout; the handle stays usable, so callers can keep
    /// polling or [`cancel`](ResponseHandle::cancel) and walk away).
    ///
    /// # Panics
    /// When the response was already consumed by
    /// [`try_take`](ResponseHandle::try_take).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Outputs, SolveError>> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.state.cell.lock().expect("response cell poisoned");
        loop {
            match std::mem::replace(&mut *cell, ResponseCell::Taken) {
                ResponseCell::Ready(result) => return Some(result),
                ResponseCell::Taken => {
                    panic!("response was already consumed by try_take")
                }
                ResponseCell::Pending => {
                    *cell = ResponseCell::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _) = self
                        .state
                        .ready
                        .wait_timeout(cell, deadline.saturating_duration_since(now))
                        .expect("response cell poisoned");
                    cell = guard;
                }
            }
        }
    }

    /// Cancel this request: if still queued it is shed at dequeue; if
    /// mid-solve it stops at the next executor chunk boundary. Either way
    /// the handle resolves to [`SolveError::DeadlineExceeded`]. A no-op
    /// once the solve already finished.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The trace span id minted for this request at submit (0 when
    /// tracing was disabled). Every `Enqueue`/`Dequeue`/`QueueWait`/
    /// `Solve` event of the request carries it, so a caller holding the
    /// handle can find its request in an exported trace.
    pub fn trace_span(&self) -> u64 {
        self.span
    }
}

/// One queued request.
struct Pending {
    key: ProgramKey,
    inputs: Inputs,
    state: Arc<ResponseState>,
    submitted: Instant,
    /// The request's deadline/cancellation token, shared with its handle.
    cancel: CancelToken,
    /// Trace span id (0 when tracing was disabled at submit).
    span: u64,
}

/// State shared between the handle type, the workers, and the queue.
struct Inner {
    queue: Mutex<VecDeque<Pending>>,
    nonempty: Condvar,
    /// Once set, `submit` rejects and workers exit after draining.
    closed: AtomicBool,
    registry: Registry,
    batch_max: usize,
    queue_cap: usize,
    depth: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    deadline_expired: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    latency: LatencyHistogram,
    /// Per-stage duration histograms, shared with the registry (compile),
    /// each artifact (specialize), and the TCP front-end (reply). Recorded
    /// only while tracing is enabled.
    stages: Arc<StageSet>,
    faults: FaultInjector,
    drain_timeout: Duration,
    /// Set by `shutdown` (under the queue lock): when the drain runs past
    /// this instant, workers answer the remaining backlog with `Shutdown`.
    drain_deadline: Mutex<Option<Instant>>,
}

impl Inner {
    fn respond(&self, p: Pending, result: Result<Outputs, SolveError>) {
        if result.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(p.submitted.elapsed());
        self.responses.fetch_add(1, Ordering::Relaxed);
        p.state.fulfill(result);
    }
}

/// An embeddable concurrent solve service.
///
/// `Service::new` spawns the worker threads; [`Service::submit`] enqueues
/// a request and returns a [`ResponseHandle`] immediately. Requests that
/// share a program are micro-batched onto one pooled run-slot session, and
/// a request that panics mid-solve is isolated at the request boundary:
/// its handle resolves to [`SolveError::Panicked`] while the worker — and
/// every other request — carries on. Dropping the service (or calling
/// [`Service::shutdown`]) drains the queue and joins the workers.
pub struct Service {
    inner: Arc<Inner>,
    executor: Arc<dyn Executor>,
    /// The concrete pool behind `executor` when `solve_threads > 1`,
    /// kept so its counters stay observable through the trait object.
    pool: Option<Arc<ThreadPool>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    default_runtime: RuntimeOptions,
    default_deadline: Option<Duration>,
}

impl Service {
    pub fn new(options: ServiceOptions) -> Service {
        let stages = Arc::new(StageSet::new());
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
            closed: AtomicBool::new(false),
            registry: Registry::with_observability(
                options.registry_capacity,
                options.faults.clone(),
                Some(Arc::clone(&stages)),
            ),
            batch_max: options.batch_max.max(1),
            queue_cap: options.queue_cap.max(1),
            depth: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            stages,
            faults: options.faults.clone(),
            drain_timeout: options.drain_timeout,
            drain_deadline: Mutex::new(None),
        });
        // One executor shared by every worker: a `ThreadPool` handle when
        // intra-solve parallelism was requested, otherwise `Sequential`
        // (requests are the parallelism).
        let pool = (options.solve_threads > 1).then(|| ThreadPool::shared(options.solve_threads));
        let executor: Arc<dyn Executor> = match &pool {
            Some(pool) => Arc::clone(pool) as Arc<dyn Executor>,
            None => Arc::new(Sequential),
        };
        let workers = (0..options.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let executor = Arc::clone(&executor);
                std::thread::Builder::new()
                    .name(format!("ps-service-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &*executor))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            inner,
            executor,
            pool,
            workers: Mutex::new(workers),
            default_runtime: options.runtime,
            default_deadline: options.default_deadline,
        }
    }

    /// Compile `source` into the registry (warming it) under the service's
    /// default runtime options and return the key for submitting requests.
    pub fn register(&self, source: &str) -> Result<ProgramKey, ServiceError> {
        self.register_with(source, self.default_runtime)
    }

    /// Like [`Service::register`] with explicit runtime options.
    pub fn register_with(
        &self,
        source: &str,
        options: RuntimeOptions,
    ) -> Result<ProgramKey, ServiceError> {
        let key = ProgramKey::new(source, options);
        self.inner.registry.get_or_compile(&key)?;
        Ok(key)
    }

    /// Enqueue one request; returns immediately. The program compiles
    /// lazily on first pickup if it was never registered. The service's
    /// [`ServiceOptions::default_deadline`] (if any) applies.
    pub fn submit(&self, request: SolveRequest) -> ResponseHandle {
        self.submit_inner(request, self.default_deadline)
    }

    /// Like [`Service::submit`] with an explicit deadline (measured from
    /// now, overriding the service default). Past it, the request is shed
    /// at dequeue or cancelled mid-solve, and the handle resolves to
    /// [`SolveError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        request: SolveRequest,
        deadline: Duration,
    ) -> ResponseHandle {
        self.submit_inner(request, Some(deadline))
    }

    fn submit_inner(&self, request: SolveRequest, deadline: Option<Duration>) -> ResponseHandle {
        let state = Arc::new(ResponseState::default());
        let cancel = match deadline {
            Some(d) => CancelToken::after(d),
            None => CancelToken::new(),
        };
        // The request's trace span id, carried by every lifecycle event
        // from enqueue to reply (0 while tracing is disabled).
        let span = if ps_trace::enabled() {
            ps_trace::new_span()
        } else {
            0
        };
        {
            // The closed check happens *under the queue lock* — `shutdown`
            // flips the flag under the same lock, so a request can never
            // slip into the queue after the workers were told to drain
            // (it would hang forever with nobody left to serve it).
            let mut queue = self.inner.queue.lock().expect("request queue poisoned");
            if self.inner.closed.load(Ordering::Acquire) {
                drop(queue);
                state.fulfill(Err(SolveError::Shutdown));
                return ResponseHandle {
                    state,
                    cancel,
                    span,
                };
            }
            // Admission control: at capacity the request is shed *now*
            // (cheap, bounded memory) rather than queued behind work the
            // workers may never catch up with.
            if queue.len() >= self.inner.queue_cap {
                drop(queue);
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                state.fulfill(Err(SolveError::Busy));
                return ResponseHandle {
                    state,
                    cancel,
                    span,
                };
            }
            self.inner.requests.fetch_add(1, Ordering::Relaxed);
            self.inner.depth.fetch_add(1, Ordering::Relaxed);
            queue.push_back(Pending {
                key: request.key,
                inputs: request.inputs,
                state: Arc::clone(&state),
                submitted: Instant::now(),
                cancel: cancel.clone(),
                span,
            });
            ps_trace::emit(
                EvKind::Enqueue,
                Phase::Instant,
                span,
                span,
                queue.len() as u64,
            );
        }
        self.inner.nonempty.notify_one();
        ResponseHandle {
            state,
            cancel,
            span,
        }
    }

    /// Submit and block for the response (convenience).
    pub fn solve(&self, key: &ProgramKey, inputs: Inputs) -> Result<Outputs, SolveError> {
        self.submit(SolveRequest::new(key.clone(), inputs)).wait()
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        ServiceStats {
            requests: inner.requests.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            responses: inner.responses.load(Ordering::Relaxed),
            errors: inner.errors.load(Ordering::Relaxed),
            panics: inner.panics.load(Ordering::Relaxed),
            deadline_expired: inner.deadline_expired.load(Ordering::Relaxed),
            batches: inner.batches.load(Ordering::Relaxed),
            max_batch: inner.max_batch.load(Ordering::Relaxed),
            queue_depth: inner.depth.load(Ordering::Relaxed),
            compiles: inner.registry.compiles(),
            cache_hits: inner.registry.hits(),
            cache_evictions: inner.registry.evictions(),
            p50: inner.latency.quantile(0.5),
            p99: inner.latency.quantile(0.99),
            mean: inner.latency.mean(),
            stages: inner.stages.snapshot(),
        }
    }

    /// The service's shared per-stage histogram set. The TCP front-end
    /// records its `Reply` stage here so one snapshot covers the whole
    /// request lifecycle; embedders can do the same for their own reply
    /// path. Stage recording happens only while [`ps_trace::enabled`].
    pub fn stages(&self) -> Arc<StageSet> {
        Arc::clone(&self.inner.stages)
    }

    /// The executor solves run on (the shared pool handle when
    /// `solve_threads > 1`).
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.executor
    }

    /// Counters of the shared solve pool, or `None` when
    /// `solve_threads <= 1` (solves run on `Sequential`). The pool's
    /// `max_live_regions` high-water mark is the service's observable
    /// proof that solves from different workers genuinely overlapped.
    pub fn pool_stats(&self) -> Option<ps_executor::PoolStatsSnapshot> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            // Flip the flag while holding the queue mutex: a worker that
            // just observed `closed == false` still holds the lock, so its
            // subsequent `Condvar::wait` releases it *before* this
            // notification fires — the wakeup cannot be lost (and `join`
            // below cannot deadlock on a sleeping worker).
            let _queue = self.inner.queue.lock().expect("request queue poisoned");
            self.inner.closed.store(true, Ordering::Release);
            // Arm the drain budget: workers keep serving the backlog until
            // this instant, then answer the rest with `Shutdown`.
            let mut drain = self
                .inner
                .drain_deadline
                .lock()
                .expect("drain deadline poisoned");
            if drain.is_none() {
                *drain = Some(Instant::now() + self.inner.drain_timeout);
            }
        }
        self.inner.nonempty.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().expect("worker table poisoned");
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drain the queue until the service closes *and* the queue is empty:
/// shutdown never abandons an accepted request.
fn worker_loop(inner: &Inner, executor: &dyn Executor) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().expect("request queue poisoned");
            loop {
                if let Some(first) = queue.pop_front() {
                    let mut batch = vec![first];
                    // Micro-batch: pull later requests for the *same*
                    // program, leaving other keys in arrival order. All
                    // batched requests share one registry lookup and one
                    // pooled run-slot session below.
                    let mut i = 0;
                    while batch.len() < inner.batch_max && i < queue.len() {
                        if queue[i].key == batch[0].key {
                            batch.push(queue.remove(i).expect("index checked"));
                        } else {
                            i += 1;
                        }
                    }
                    break batch;
                }
                if inner.closed.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.nonempty.wait(queue).expect("request queue poisoned");
            }
        };
        inner.depth.fetch_sub(batch.len() as u64, Ordering::Relaxed);
        inner.batches.fetch_add(1, Ordering::Relaxed);
        inner
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        if ps_trace::enabled() {
            // Dequeue + queue-wait per request, stamped on the worker that
            // picked the batch up.
            let depth = inner.depth.load(Ordering::Relaxed);
            for p in &batch {
                let waited = p.submitted.elapsed();
                ps_trace::emit(EvKind::Dequeue, Phase::Instant, p.span, p.span, depth);
                ps_trace::emit(
                    EvKind::QueueWait,
                    Phase::Complete,
                    p.span,
                    waited.as_nanos() as u64,
                    p.span,
                );
                inner.stages.record(Stage::QueueWait, waited);
            }
        }
        // Bounded drain: once shutdown's budget is spent, the backlog is
        // answered (with `Shutdown`) instead of executed — every handle
        // still resolves, but a deep queue can no longer hold the process.
        if inner.closed.load(Ordering::Acquire) {
            let drain_expired = inner
                .drain_deadline
                .lock()
                .expect("drain deadline poisoned")
                .is_some_and(|d| Instant::now() >= d);
            if drain_expired {
                for p in batch {
                    inner.respond(p, Err(SolveError::Shutdown));
                }
                continue;
            }
        }
        match inner.registry.get_or_compile(&batch[0].key) {
            Err(err) => {
                // The whole batch shares the program, so it shares the
                // compile failure.
                let msg = err.to_string();
                for p in batch {
                    inner.respond(p, Err(SolveError::Compile(msg.clone())));
                }
            }
            Ok(entry) => {
                ps_trace::emit(
                    EvKind::Batch,
                    Phase::Instant,
                    0,
                    batch.len() as u64,
                    entry.trace_label(),
                );
                let mut session = entry.session();
                for (i, p) in batch.into_iter().enumerate() {
                    // A request already past its deadline is shed here, at
                    // dequeue — it never executes at all.
                    if p.cancel.is_cancelled() {
                        inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                        inner.respond(p, Err(SolveError::DeadlineExceeded));
                        continue;
                    }
                    // The request boundary: a panicking solve resolves
                    // *this* handle to an error; the session drops the
                    // claimed slot and the worker carries on. The cancel
                    // scope lets a mid-solve expiry stop the solve at the
                    // executor's next chunk boundary.
                    let _scope = p.cancel.enter();
                    let tracing = ps_trace::enabled();
                    let solve_span =
                        ps_trace::span_with(EvKind::Solve, p.span, entry.trace_label(), i as u64);
                    let solve_t0 = tracing.then(Instant::now);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inner.faults.should_fire(FaultPoint::WorkerPanic) {
                            ps_trace::emit(
                                EvKind::Fault,
                                Phase::Instant,
                                p.span,
                                ps_trace::label_if_enabled("worker_panic"),
                                0,
                            );
                            panic!("injected fault: worker panic");
                        }
                        if inner.faults.should_fire(FaultPoint::SlowSolve) {
                            ps_trace::emit(
                                EvKind::Fault,
                                Phase::Instant,
                                p.span,
                                ps_trace::label_if_enabled("slow_solve"),
                                0,
                            );
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        session.run(&p.inputs, executor)
                    }));
                    drop(solve_span);
                    drop(_scope);
                    if let (Some(t0), Ok(_)) = (solve_t0, &outcome) {
                        inner.stages.record(Stage::Solve, t0.elapsed());
                    }
                    let result = match outcome {
                        Ok(Ok(outputs)) => Ok(outputs),
                        Ok(Err(e)) => Err(SolveError::Runtime(e.to_string())),
                        Err(payload) if payload.is::<Cancelled>() => {
                            // Mid-solve cancellation is a deadline event,
                            // not a crash: the pool skipped the region's
                            // remaining chunks and stays healthy.
                            inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                            Err(SolveError::DeadlineExceeded)
                        }
                        Err(payload) => {
                            inner.panics.fetch_add(1, Ordering::Relaxed);
                            let msg = panic_message(payload);
                            if tracing {
                                // Postmortem: the dump's event tail names
                                // the thread, the request span, and (via
                                // Region events) the equation being solved.
                                ps_trace::emit(
                                    EvKind::Panic,
                                    Phase::Instant,
                                    p.span,
                                    entry.trace_label(),
                                    p.span,
                                );
                                ps_trace::flight::record(&format!(
                                    "worker panic serving request span {} ({msg})",
                                    p.span
                                ));
                            }
                            Err(SolveError::Panicked(msg))
                        }
                    };
                    inner.respond(p, result);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECURRENCE: &str = "Compound: module (rate: real; n: int): [final: real];
        type K = 2 .. n;
        var balance: array [1 .. n] of real;
        define
            balance[1] = 1.0;
            balance[K] = balance[K-1] * (1.0 + rate);
            final = balance[n];
        end Compound;";

    /// Integer division panics on a zero divisor — the deliberate panic
    /// injection used by the isolation tests.
    const DIVIDER: &str = "Divider: module (p: int; q: int): [y: int];
        define y = p div q; end Divider;";

    fn service() -> Service {
        Service::new(ServiceOptions::default())
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let out = svc
            .solve(&key, Inputs::new().set_real("rate", 0.5).set_int("n", 10))
            .unwrap();
        assert!((out.scalar("final").as_real() - 1.5f64.powi(9)).abs() < 1e-9);
        let stats = svc.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.compiles, 1);
        assert!(stats.p50 > Duration::from_nanos(0));
    }

    use std::time::Duration;

    #[test]
    fn batching_shares_one_registry_hit() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let handles: Vec<ResponseHandle> = (0..16)
            .map(|i| {
                svc.submit(SolveRequest::new(
                    key.clone(),
                    Inputs::new()
                        .set_real("rate", 0.5)
                        .set_int("n", 4 + (i % 3)),
                ))
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.responses, 16);
        assert!(
            stats.cache_hits > stats.compiles,
            "warm path: hits {} > compiles {}",
            stats.cache_hits,
            stats.compiles
        );
    }

    #[test]
    fn a_panicking_request_is_isolated() {
        let svc = service();
        let key = svc.register(DIVIDER).unwrap();
        let ok1 = svc.solve(&key, Inputs::new().set_int("p", 7).set_int("q", 2));
        assert_eq!(ok1.unwrap().scalar("y").as_int(), 3);
        let boom = svc.solve(&key, Inputs::new().set_int("p", 7).set_int("q", 0));
        match boom {
            Err(SolveError::Panicked(msg)) => assert!(msg.contains("div"), "{msg}"),
            other => panic!("expected a panic response, got {other:?}"),
        }
        // The same worker keeps serving correct answers afterwards.
        for _ in 0..4 {
            let ok = svc
                .solve(&key, Inputs::new().set_int("p", 9).set_int("q", 3))
                .unwrap();
            assert_eq!(ok.scalar("y").as_int(), 3);
        }
        let stats = svc.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn missing_input_is_a_runtime_error_not_a_crash() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let r = svc.solve(&key, Inputs::new().set_real("rate", 0.5));
        match r {
            Err(SolveError::Runtime(msg)) => assert!(msg.contains("missing input"), "{msg}"),
            other => panic!("expected runtime error, got {other:?}"),
        }
    }

    #[test]
    fn compile_errors_reach_every_batched_request() {
        let svc = service();
        let bad = ProgramKey::new("garbage ???", RuntimeOptions::default());
        let handles: Vec<ResponseHandle> = (0..3)
            .map(|_| svc.submit(SolveRequest::new(bad.clone(), Inputs::new())))
            .collect();
        for h in handles {
            match h.wait() {
                Err(SolveError::Compile(_)) => {}
                other => panic!("expected compile error, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_take_then_wait_fails_loudly_instead_of_hanging() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let h = svc.submit(SolveRequest::new(
            key,
            Inputs::new().set_real("rate", 0.5).set_int("n", 6),
        ));
        let taken = loop {
            if let Some(result) = h.try_take() {
                break result;
            }
            std::thread::yield_now();
        };
        taken.unwrap();
        assert!(h.is_ready(), "consumed responses still read as done");
        assert!(h.try_take().is_none(), "a response is taken at most once");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || h.wait()));
        assert!(outcome.is_err(), "waiting on a consumed response panics");
    }

    #[test]
    fn full_queue_sheds_load_with_busy() {
        let svc = Service::new(ServiceOptions {
            workers: 1,
            queue_cap: 2,
            ..Default::default()
        });
        let key = svc.register(RECURRENCE).unwrap();
        // Occupy the single worker with a slow solve, and wait until it is
        // actually picked up (the queue gauge drops to zero) so later
        // submissions sit in the queue behind it.
        let slow = svc.submit(SolveRequest::new(
            key.clone(),
            Inputs::new().set_real("rate", 1e-9).set_int("n", 4_000_000),
        ));
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Fill the queue to its cap, then overflow it.
        let queued: Vec<ResponseHandle> = (0..2)
            .map(|_| {
                svc.submit(SolveRequest::new(
                    key.clone(),
                    Inputs::new().set_real("rate", 0.5).set_int("n", 4),
                ))
            })
            .collect();
        let shed = svc.submit(SolveRequest::new(
            key.clone(),
            Inputs::new().set_real("rate", 0.5).set_int("n", 4),
        ));
        match shed.wait() {
            Err(SolveError::Busy) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1, "the shed request is counted");
        // Accepted requests still resolve normally.
        slow.wait().unwrap();
        for h in queued {
            h.wait().unwrap();
        }
        assert_eq!(svc.stats().responses, 3, "shed requests never queue");
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue_without_executing() {
        let svc = Service::new(ServiceOptions {
            workers: 1,
            ..Default::default()
        });
        let key = svc.register(RECURRENCE).unwrap();
        // Occupy the single worker so the doomed request sits queued past
        // its (already-expired) deadline.
        let slow = svc.submit(SolveRequest::new(
            key.clone(),
            Inputs::new().set_real("rate", 1e-9).set_int("n", 4_000_000),
        ));
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let doomed = svc.submit_with_deadline(
            SolveRequest::new(
                key.clone(),
                Inputs::new().set_real("rate", 0.5).set_int("n", 4),
            ),
            Duration::ZERO,
        );
        match doomed.wait() {
            Err(SolveError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        slow.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.deadline_expired, 1);
        // A generous deadline still succeeds.
        let ok = svc.submit_with_deadline(
            SolveRequest::new(key, Inputs::new().set_real("rate", 0.5).set_int("n", 4)),
            Duration::from_secs(120),
        );
        ok.wait().unwrap();
    }

    #[test]
    fn wait_timeout_times_out_then_delivers() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let h = svc.submit(SolveRequest::new(
            key,
            Inputs::new().set_real("rate", 1e-9).set_int("n", 4_000_000),
        ));
        // A 0-length wait on a multi-million-step solve times out...
        assert!(h.wait_timeout(Duration::ZERO).is_none());
        // ...and a patient one takes the same response the handle owns.
        let out = h
            .wait_timeout(Duration::from_secs(120))
            .expect("solve finishes well within the bound");
        out.unwrap();
        assert!(h.try_take().is_none(), "wait_timeout consumed the response");
    }

    #[test]
    fn handle_cancel_sheds_a_queued_request() {
        let svc = Service::new(ServiceOptions {
            workers: 1,
            ..Default::default()
        });
        let key = svc.register(RECURRENCE).unwrap();
        let slow = svc.submit(SolveRequest::new(
            key.clone(),
            Inputs::new().set_real("rate", 1e-9).set_int("n", 4_000_000),
        ));
        while svc.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        let victim = svc.submit(SolveRequest::new(
            key,
            Inputs::new().set_real("rate", 0.5).set_int("n", 4),
        ));
        victim.cancel();
        match victim.wait() {
            Err(SolveError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        slow.wait().unwrap();
        assert_eq!(svc.stats().deadline_expired, 1);
    }

    #[test]
    fn injected_worker_panics_are_counted_and_isolated() {
        use ps_support::faults::FaultSpec;
        let svc = Service::new(ServiceOptions {
            workers: 1,
            // Rate 1000‰: every request hits the injected panic.
            faults: FaultInjector::new(FaultSpec::seeded(3).rate(FaultPoint::WorkerPanic, 1000)),
            ..Default::default()
        });
        let key = svc.register(RECURRENCE).unwrap();
        match svc.solve(&key, Inputs::new().set_real("rate", 0.5).set_int("n", 4)) {
            Err(SolveError::Panicked(msg)) => assert!(msg.contains("injected fault"), "{msg}"),
            other => panic!("expected injected panic, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.responses, 1, "the worker survived its own fault");
    }

    #[test]
    fn shutdown_races_with_submitters_without_losing_requests() {
        // Hammer the submit/shutdown race: every handle must resolve —
        // either with a real response (enqueued before the close) or with
        // a Shutdown rejection — never by hanging on a request that
        // slipped into a queue nobody drains.
        for round in 0..24 {
            let svc = Service::new(ServiceOptions {
                workers: 2,
                ..Default::default()
            });
            let key = svc.register(RECURRENCE).unwrap();
            std::thread::scope(|scope| {
                for t in 0..3 {
                    let svc = &svc;
                    let key = key.clone();
                    scope.spawn(move || {
                        for i in 0..8 {
                            let h = svc.submit(SolveRequest::new(
                                key.clone(),
                                Inputs::new()
                                    .set_real("rate", 0.25)
                                    .set_int("n", 3 + ((t + i) % 5) as i64),
                            ));
                            match h.wait() {
                                Ok(_) | Err(SolveError::Shutdown) => {}
                                other => panic!("unexpected outcome {other:?}"),
                            }
                        }
                    });
                }
                if round % 2 == 0 {
                    std::thread::yield_now();
                }
                svc.shutdown();
            });
        }
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let svc = service();
        let key = svc.register(RECURRENCE).unwrap();
        let pending: Vec<ResponseHandle> = (0..8)
            .map(|_| {
                svc.submit(SolveRequest::new(
                    key.clone(),
                    Inputs::new().set_real("rate", 0.1).set_int("n", 50),
                ))
            })
            .collect();
        svc.shutdown();
        // Accepted requests were served, not abandoned.
        for h in pending {
            h.wait().unwrap();
        }
        // New requests are rejected immediately.
        match svc.solve(&key, Inputs::new().set_real("rate", 0.1).set_int("n", 5)) {
            Err(SolveError::Shutdown) => {}
            other => panic!("expected shutdown rejection, got {other:?}"),
        }
    }
}
