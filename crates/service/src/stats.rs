//! Per-service counters and a lock-free log₂ latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` counts samples whose
/// nanosecond latency has `floor(log2(ns)) == i` (bucket 0 also takes
/// sub-nanosecond samples). 2⁶³ ns ≈ 292 years, so the top bucket is
/// unreachable in practice.
const BUCKETS: usize = 64;

/// Lock-free latency histogram: recording is one relaxed `fetch_add`, so
/// worker threads never contend on a lock for bookkeeping. Quantiles are
/// read by scanning the bucket counts (each reported value is the upper
/// bound of its bucket, i.e. within 2× of the true sample).
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// The latency below which a fraction `q` (0..=1) of samples fall,
    /// reported as the enclosing bucket's upper bound. Zero when nothing
    /// was recorded yet.
    pub(crate) fn quantile(&self, q: f64) -> Duration {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(upper);
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    pub(crate) fn mean(&self) -> Duration {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / total)
    }
}

/// A point-in-time snapshot of a service's counters, returned by
/// [`crate::Service::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted by `submit` (including ones still queued).
    pub requests: u64,
    /// Requests shed by `submit` because the queue was at
    /// [`crate::ServiceOptions::queue_cap`] (resolved to
    /// [`crate::SolveError::Busy`], never queued).
    pub rejected: u64,
    /// Responses delivered (success or error).
    pub responses: u64,
    /// Responses that carried an error (compile, runtime, or panic).
    pub errors: u64,
    /// Requests whose solve panicked (isolated at the request boundary).
    pub panics: u64,
    /// Requests resolved to [`crate::SolveError::DeadlineExceeded`]: shed
    /// unexecuted at dequeue, or cancelled mid-solve (a subset of
    /// `errors`).
    pub deadline_expired: u64,
    /// Worker micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch executed so far.
    pub max_batch: u64,
    /// Requests currently queued (a gauge, racy by nature).
    pub queue_depth: u64,
    /// Programs compiled into the registry.
    pub compiles: u64,
    /// Registry lookups served from cache.
    pub cache_hits: u64,
    /// Registry entries evicted to stay within capacity.
    pub cache_evictions: u64,
    /// Median submit→response latency (log₂-bucket upper bound).
    pub p50: Duration,
    /// 99th-percentile submit→response latency (log₂-bucket upper bound).
    pub p99: Duration,
    /// Mean submit→response latency.
    pub mean: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_the_right_buckets() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(3));
        assert!(p99 >= Duration::from_millis(1) && p99 < Duration::from_millis(3));
        assert!(h.mean() > p50 / 2, "mean pulled up by the slow tail");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_is_recorded() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1));
    }
}
