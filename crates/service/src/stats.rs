//! Per-service counters and latency/stage histograms.
//!
//! The latency histogram delegates to [`ps_trace::Histogram`]: lock-free
//! log₂ buckets with geometric-midpoint quantile interpolation, so the
//! reported p50/p99 sit *inside* their bucket instead of overstating by up
//! to 2× at the bucket's upper edge.

use ps_trace::{Histogram, StageSnapshot};
use std::time::Duration;

/// Lock-free latency histogram: recording is three relaxed `fetch_add`s,
/// so worker threads never contend on a lock for bookkeeping. A thin
/// `Duration`-typed wrapper over [`ps_trace::Histogram`].
pub(crate) struct LatencyHistogram {
    inner: Histogram,
}

impl LatencyHistogram {
    pub(crate) fn new() -> LatencyHistogram {
        LatencyHistogram {
            inner: Histogram::new(),
        }
    }

    pub(crate) fn record(&self, d: Duration) {
        self.inner.record(d);
    }

    /// The latency below which a fraction `q` (0..=1) of samples fall,
    /// geometric-midpoint interpolated within its log₂ bucket. Zero when
    /// nothing was recorded yet.
    pub(crate) fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.inner.quantile_ns(q))
    }

    pub(crate) fn mean(&self) -> Duration {
        Duration::from_nanos(self.inner.mean_ns())
    }
}

/// A point-in-time snapshot of a service's counters, returned by
/// [`crate::Service::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted by `submit` (including ones still queued).
    pub requests: u64,
    /// Requests shed by `submit` because the queue was at
    /// [`crate::ServiceOptions::queue_cap`] (resolved to
    /// [`crate::SolveError::Busy`], never queued).
    pub rejected: u64,
    /// Responses delivered (success or error).
    pub responses: u64,
    /// Responses that carried an error (compile, runtime, or panic).
    pub errors: u64,
    /// Requests whose solve panicked (isolated at the request boundary).
    pub panics: u64,
    /// Requests resolved to [`crate::SolveError::DeadlineExceeded`]: shed
    /// unexecuted at dequeue, or cancelled mid-solve (a subset of
    /// `errors`).
    pub deadline_expired: u64,
    /// Worker micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch executed so far.
    pub max_batch: u64,
    /// Requests currently queued (a gauge, racy by nature).
    pub queue_depth: u64,
    /// Programs compiled into the registry.
    pub compiles: u64,
    /// Registry lookups served from cache.
    pub cache_hits: u64,
    /// Registry entries evicted to stay within capacity.
    pub cache_evictions: u64,
    /// Median submit→response latency (geometric-midpoint interpolated).
    pub p50: Duration,
    /// 99th-percentile submit→response latency (interpolated).
    pub p99: Duration,
    /// Mean submit→response latency.
    pub mean: Duration,
    /// Per-stage duration histograms (queue wait, compile, specialize,
    /// solve, reply), recorded only while [`ps_trace::enabled`]. The
    /// `reply` stage is filled by the TCP front-end; it stays empty for
    /// embedded services.
    pub stages: StageSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate_within_their_buckets() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // 1000 ns lands in bucket 9 ([512, 1024)); the interpolated p50
        // sits inside that bucket, no longer at the 2047 ns upper edge.
        assert!(
            p50 >= Duration::from_nanos(512) && p50 < Duration::from_nanos(1024),
            "p50 = {p50:?}"
        );
        // 1 ms lands in bucket 19 ([524288, 1048576) ns).
        assert!(
            p99 >= Duration::from_nanos(524_288) && p99 < Duration::from_nanos(1_048_576),
            "p99 = {p99:?}"
        );
        assert!(h.mean() > p50 / 2, "mean pulled up by the slow tail");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_is_recorded() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1));
    }
}
