//! Structured compiler diagnostics.

use crate::source::{FileId, SourceMap};
use crate::span::Span;
use std::cell::RefCell;
use std::fmt;

/// How severe a diagnostic is. Errors abort the pipeline stage that produced
/// them; warnings and notes do not.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic message, optionally anchored at a span, with secondary
/// notes attached.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `E0103`. Codes are grouped per
    /// pipeline stage: `E01xx` lexer/parser, `E02xx` semantic analysis,
    /// `E03xx` scheduler, `E04xx` hyperplane transform, `E05xx` runtime,
    /// `E06xx` static tape verification (`ps-analyze`: E0601
    /// use-before-def, E0602 out-of-bounds, E0603 overlapping DOALL
    /// writes, E0604 structural tape fault).
    pub code: &'static str,
    pub message: String,
    pub span: Option<Span>,
    pub notes: Vec<(String, Option<Span>)>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn note_diag(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message)
        }
    }

    /// Anchor the diagnostic at `span`.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a secondary note, optionally with its own span.
    pub fn with_note(mut self, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        self.notes.push((message.into(), span));
        self
    }

    /// Render the diagnostic with a source excerpt and caret line.
    pub fn render(&self, file: FileId, sources: &SourceMap) -> String {
        let mut out = String::new();
        match self.span {
            Some(span) if !span.is_dummy() => {
                let lc = sources.lookup(file, span.lo);
                out.push_str(&format!(
                    "{}[{}]: {}\n  --> {}:{}\n",
                    self.severity,
                    self.code,
                    self.message,
                    sources.file_name(file),
                    lc
                ));
                let line = sources.line_text(file, span.lo);
                out.push_str(&format!("   | {line}\n"));
                let col = lc.col as usize - 1;
                let width = (span.len() as usize)
                    .max(1)
                    .min(line.len().saturating_sub(col).max(1));
                out.push_str(&format!("   | {}{}\n", " ".repeat(col), "^".repeat(width)));
            }
            _ => {
                out.push_str(&format!(
                    "{}[{}]: {}\n",
                    self.severity, self.code, self.message
                ));
            }
        }
        for (note, nspan) in &self.notes {
            match nspan {
                Some(s) if !s.is_dummy() => {
                    let lc = sources.lookup(file, s.lo);
                    out.push_str(&format!("   = note: {note} (at {lc})\n"));
                }
                _ => out.push_str(&format!("   = note: {note}\n")),
            }
        }
        out
    }
}

/// Collects diagnostics emitted during a pipeline stage.
///
/// Interior mutability keeps emission ergonomic from `&self` contexts (the
/// type checker threads a shared sink through visitors).
#[derive(Default)]
pub struct DiagnosticSink {
    diags: RefCell<Vec<Diagnostic>>,
}

impl DiagnosticSink {
    pub fn new() -> DiagnosticSink {
        DiagnosticSink::default()
    }

    pub fn emit(&self, diag: Diagnostic) {
        self.diags.borrow_mut().push(diag);
    }

    /// Number of error-severity diagnostics collected so far.
    pub fn error_count(&self) -> usize {
        self.diags
            .borrow()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    pub fn is_empty(&self) -> bool {
        self.diags.borrow().is_empty()
    }

    pub fn len(&self) -> usize {
        self.diags.borrow().len()
    }

    /// Drain all collected diagnostics, leaving the sink empty.
    pub fn take(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diags.borrow_mut())
    }

    /// Clone out the collected diagnostics without draining.
    pub fn snapshot(&self) -> Vec<Diagnostic> {
        self.diags.borrow().clone()
    }

    /// Render every diagnostic against `file`.
    pub fn render_all(&self, file: FileId, sources: &SourceMap) -> String {
        self.diags
            .borrow()
            .iter()
            .map(|d| d.render(file, sources))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_by_severity() {
        let sink = DiagnosticSink::new();
        sink.emit(Diagnostic::error("E0001", "bad"));
        sink.emit(Diagnostic::warning("E0002", "meh"));
        sink.emit(Diagnostic::note_diag("E0003", "fyi"));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.error_count(), 1);
        assert!(sink.has_errors());
    }

    #[test]
    fn take_drains() {
        let sink = DiagnosticSink::new();
        sink.emit(Diagnostic::error("E0001", "bad"));
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
        assert!(!sink.has_errors());
    }

    #[test]
    fn render_includes_caret() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.ps", "abc defg hij\n");
        let d = Diagnostic::error("E0100", "unexpected token").with_span(Span::new(4, 8));
        let rendered = d.render(f, &sm);
        assert!(rendered.contains("error[E0100]: unexpected token"));
        assert!(rendered.contains("t.ps:1:5"));
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn render_spanless() {
        let sm = SourceMap::new();
        let mut sm2 = sm;
        let f = sm2.add_file("t.ps", "x\n");
        let d = Diagnostic::warning("E0200", "global issue").with_note("context", None);
        let rendered = d.render(f, &sm2);
        assert!(rendered.contains("warning[E0200]: global issue"));
        assert!(rendered.contains("note: context"));
    }
}
