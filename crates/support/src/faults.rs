//! Seeded fault injection: a registry of named injection points driven by
//! the deterministic [`Lcg`].
//!
//! Robustness claims ("the service survives worker panics", "the TCP
//! front-end rides out mid-frame disconnects") are only testable if the
//! faults themselves are *injectable on demand and reproducible by seed*.
//! This module is the shared switchboard: production code asks
//! [`FaultInjector::should_fire`] at each injection point; the injector is
//! disabled (and branch-cheap) by default, and when enabled it draws from
//! one seeded LCG so a failing chaos run is replayed by its seed alone.
//!
//! The points themselves live where the faults strike — the service worker
//! loop (panic / slow solve), the registry compile path, and the `ps-serve`
//! connection writer (socket stall / mid-frame disconnect). This module
//! only owns the decision logic and the per-point `checked`/`fired`
//! counters the chaos suite asserts against.

use crate::rng::Lcg;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of distinct injection points (the length of [`FaultPoint::ALL`]).
pub const FAULT_POINTS: usize = 5;

/// One named injection point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// The service worker panics instead of running the solve (isolated at
    /// the request boundary like any user panic).
    WorkerPanic = 0,
    /// The service worker sleeps briefly before the solve (queue pressure,
    /// deadline expiry).
    SlowSolve = 1,
    /// The registry reports a compile failure instead of compiling.
    CompileFail = 2,
    /// The connection writer stalls briefly before writing a reply.
    SocketStall = 3,
    /// The connection writer sends half a reply, then drops the socket.
    MidFrameDisconnect = 4,
}

impl FaultPoint {
    /// Every injection point, in counter order.
    pub const ALL: [FaultPoint; FAULT_POINTS] = [
        FaultPoint::WorkerPanic,
        FaultPoint::SlowSolve,
        FaultPoint::CompileFail,
        FaultPoint::SocketStall,
        FaultPoint::MidFrameDisconnect,
    ];

    /// The spec-string key for this point (`panic=50`, `slow=20`, ...).
    pub fn key(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "panic",
            FaultPoint::SlowSolve => "slow",
            FaultPoint::CompileFail => "compile",
            FaultPoint::SocketStall => "stall",
            FaultPoint::MidFrameDisconnect => "disconnect",
        }
    }
}

/// A parsed fault plan: the seed plus a per-mille firing rate for every
/// injection point. `Default` is all-zero (nothing ever fires).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the LCG that decides each `should_fire` draw.
    pub seed: u64,
    /// Firing rate per 1000 draws, indexed by `FaultPoint as usize`.
    pub per_mille: [u16; FAULT_POINTS],
}

impl FaultSpec {
    /// A spec with `seed` and no faults enabled yet.
    pub fn seeded(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Builder: set one point's per-mille rate (clamped to 1000).
    pub fn rate(mut self, point: FaultPoint, per_mille: u16) -> FaultSpec {
        self.per_mille[point as usize] = per_mille.min(1000);
        self
    }

    /// `true` when every rate is zero (the injector can stay disabled).
    pub fn is_quiet(&self) -> bool {
        self.per_mille.iter().all(|&r| r == 0)
    }

    /// Parse a `--chaos` spec string: comma-separated `key=value` pairs
    /// where the keys are `seed` plus the [`FaultPoint::key`] names and
    /// the values are per-mille rates, e.g.
    /// `seed=42,panic=50,slow=100,stall=80,disconnect=40,compile=5`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec: `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                out.seed = value
                    .parse()
                    .map_err(|_| format!("fault spec: bad seed `{value}`"))?;
                continue;
            }
            let point = FaultPoint::ALL
                .iter()
                .find(|p| p.key() == key)
                .copied()
                .ok_or_else(|| {
                    format!("fault spec: unknown point `{key}` (seed, panic, slow, compile, stall, disconnect)")
                })?;
            let rate: u16 = value
                .parse()
                .map_err(|_| format!("fault spec: `{key}` rate `{value}` is not 0..=1000"))?;
            if rate > 1000 {
                return Err(format!(
                    "fault spec: `{key}` rate {rate} exceeds 1000 per mille"
                ));
            }
            out.per_mille[point as usize] = rate;
        }
        Ok(out)
    }
}

struct InjectorInner {
    spec: FaultSpec,
    rng: Mutex<Lcg>,
    checked: [AtomicU64; FAULT_POINTS],
    fired: [AtomicU64; FAULT_POINTS],
}

/// A cloneable handle to one seeded fault plan, shared by every layer that
/// injects (service workers, registry, connection writers).
///
/// The default/disabled injector holds no state at all: `should_fire` is a
/// single `Option` test, so production paths pay nothing for carrying the
/// hook.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl FaultInjector {
    /// The no-op injector (same as `Default`): never fires.
    pub fn disabled() -> FaultInjector {
        FaultInjector::default()
    }

    /// An injector executing `spec`. A quiet spec (all rates zero) still
    /// counts draws, so tests can assert an injection point was consulted.
    pub fn new(spec: FaultSpec) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(InjectorInner {
                spec,
                rng: Mutex::new(Lcg::new(spec.seed)),
                checked: std::array::from_fn(|_| AtomicU64::new(0)),
                fired: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
        }
    }

    /// `true` when a spec is loaded (even a quiet one).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The spec this injector executes, if enabled.
    pub fn spec(&self) -> Option<FaultSpec> {
        self.inner.as_ref().map(|i| i.spec)
    }

    /// Decide whether `point` fires this time. Deterministic in the draw
    /// *sequence*: with one seed, the n-th draw across all points is fixed
    /// (which request it lands on depends on thread interleaving, so chaos
    /// tests assert on counters and invariants, not on which request
    /// faulted).
    pub fn should_fire(&self, point: FaultPoint) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        inner.checked[point as usize].fetch_add(1, Ordering::Relaxed);
        let rate = inner.spec.per_mille[point as usize];
        if rate == 0 {
            return false;
        }
        let draw = {
            let mut rng = inner.rng.lock().expect("fault rng poisoned");
            rng.next_u64() % 1000
        };
        let fire = draw < rate as u64;
        if fire {
            inner.fired[point as usize].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How many times `point` was consulted.
    pub fn checked(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.checked[point as usize].load(Ordering::Relaxed))
    }

    /// How many times `point` actually fired.
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.fired[point as usize].load(Ordering::Relaxed))
    }

    /// Total faults fired across all points.
    pub fn total_fired(&self) -> u64 {
        FaultPoint::ALL.iter().map(|&p| self.fired(p)).sum()
    }

    /// One-token summary (`panic=3/120,slow=0/120,...`) for stats lines
    /// and load reports.
    pub fn summary(&self) -> String {
        FaultPoint::ALL
            .iter()
            .map(|&p| format!("{}={}/{}", p.key(), self.fired(p), self.checked(p)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultInjector(disabled)"),
            Some(i) => write!(f, "FaultInjector({:?})", i.spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires_and_counts_nothing() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for _ in 0..100 {
            assert!(!inj.should_fire(FaultPoint::WorkerPanic));
        }
        assert_eq!(inj.checked(FaultPoint::WorkerPanic), 0);
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn rates_are_respected_statistically() {
        let inj = FaultInjector::new(FaultSpec::seeded(42).rate(FaultPoint::WorkerPanic, 100));
        let fired = (0..5000)
            .filter(|_| inj.should_fire(FaultPoint::WorkerPanic))
            .count();
        // 10% nominal; the LCG is uniform enough for a wide tolerance.
        assert!((250..=750).contains(&fired), "fired {fired}/5000 at 10%");
        assert_eq!(inj.checked(FaultPoint::WorkerPanic), 5000);
        assert_eq!(inj.fired(FaultPoint::WorkerPanic), fired as u64);
        // A zero-rate point consults but never fires (and never draws, so
        // it cannot perturb the other points' sequence).
        assert!(!inj.should_fire(FaultPoint::SlowSolve));
        assert_eq!(inj.fired(FaultPoint::SlowSolve), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let spec = FaultSpec::seeded(7)
            .rate(FaultPoint::SocketStall, 300)
            .rate(FaultPoint::MidFrameDisconnect, 300);
        let a = FaultInjector::new(spec);
        let b = FaultInjector::new(spec);
        for _ in 0..200 {
            assert_eq!(
                a.should_fire(FaultPoint::SocketStall),
                b.should_fire(FaultPoint::SocketStall)
            );
            assert_eq!(
                a.should_fire(FaultPoint::MidFrameDisconnect),
                b.should_fire(FaultPoint::MidFrameDisconnect)
            );
        }
    }

    #[test]
    fn spec_parses_and_rejects() {
        let spec = FaultSpec::parse("seed=42,panic=50,slow=100,disconnect=1000").unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.per_mille[FaultPoint::WorkerPanic as usize], 50);
        assert_eq!(spec.per_mille[FaultPoint::SlowSolve as usize], 100);
        assert_eq!(
            spec.per_mille[FaultPoint::MidFrameDisconnect as usize],
            1000
        );
        assert_eq!(spec.per_mille[FaultPoint::CompileFail as usize], 0);
        assert!(!spec.is_quiet());
        assert!(FaultSpec::parse("").unwrap().is_quiet());
        assert!(FaultSpec::parse("panic").is_err(), "missing =");
        assert!(FaultSpec::parse("warp=9").is_err(), "unknown point");
        assert!(FaultSpec::parse("panic=1001").is_err(), "rate > 1000");
        assert!(FaultSpec::parse("seed=x").is_err(), "bad seed");
    }

    #[test]
    fn builder_clamps_and_summarizes() {
        let inj = FaultInjector::new(FaultSpec::seeded(1).rate(FaultPoint::CompileFail, 2000));
        assert_eq!(
            inj.spec().unwrap().per_mille[FaultPoint::CompileFail as usize],
            1000
        );
        inj.should_fire(FaultPoint::CompileFail);
        let summary = inj.summary();
        assert!(summary.contains("compile=1/1"), "{summary}");
        assert!(!summary.contains(' '), "summary is one token: {summary}");
    }
}
