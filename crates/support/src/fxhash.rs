//! The Fx hash function (as used by rustc and Firefox).
//!
//! The compiler hashes small integer ids and interned symbols in hot paths
//! (dependency-graph construction, scheduling work lists). SipHash's DoS
//! resistance buys nothing here — inputs are our own ids — so we use the
//! classic multiply-xor Fx hasher, implemented from scratch to stay within
//! the approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state rotl 5 ^ word) * SEED` per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            self.add_to_hash(word as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"relax"), hash_of(&"relax"));
    }

    #[test]
    fn sensitive_to_input() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");

        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }

    #[test]
    fn slice_hash_covers_tail_bytes() {
        // Slices whose difference lies in the trailing (<8 byte) region must
        // still hash differently.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
