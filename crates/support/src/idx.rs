//! Strongly-typed indices and index-keyed vectors.
//!
//! Every arena-style table in the compiler (AST nodes, graph nodes, data
//! items, equations) is keyed by a newtype index so indices from different
//! tables cannot be confused. [`crate::new_index_type!`] generates the newtype and
//! [`IndexVec`] provides a `Vec` addressed by it.

use std::fmt;
use std::marker::PhantomData;

/// Trait implemented by index newtypes generated with [`crate::new_index_type!`].
pub trait Idx: Copy + Eq + std::hash::Hash + fmt::Debug + 'static {
    fn new(value: usize) -> Self;
    fn index(self) -> usize;
}

/// Define an index newtype: `new_index_type!(pub struct NodeId; "n")`.
/// The string is a short prefix used in `Debug` output (`n3`).
#[macro_export]
macro_rules! new_index_type {
    ($(#[$meta:meta])* $vis:vis struct $name:ident ; $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name(pub u32);

        impl $crate::idx::Idx for $name {
            #[inline]
            fn new(value: usize) -> Self {
                debug_assert!(value <= u32::MAX as usize);
                $name(value as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

/// A `Vec<T>` addressed by a typed index `I`.
#[derive(Clone, PartialEq, Eq)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IndexVec<I, T> {
    pub fn new() -> Self {
        IndexVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        IndexVec {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Push a value, returning the index it was stored at.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::new(self.raw.len());
        self.raw.push(value);
        idx
    }

    pub fn len(&self) -> usize {
        self.raw.len()
    }

    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterate `(index, &value)` pairs in index order.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, v)| (I::new(i), v))
    }

    /// Iterate all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::new)
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// The index the next `push` would return.
    pub fn next_index(&self) -> I {
        I::new(self.raw.len())
    }

    pub fn raw(&self) -> &[T] {
        &self.raw
    }

    pub fn into_raw(self) -> Vec<T> {
        self.raw
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        IndexVec::new()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter_enumerated()).finish()
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IndexVec {
            raw: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    new_index_type! { struct TestId; "t" }

    #[test]
    fn push_returns_sequential_indices() {
        let mut v: IndexVec<TestId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, TestId(0));
        assert_eq!(b, TestId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
    }

    #[test]
    fn enumerated_iteration() {
        let v: IndexVec<TestId, i32> = [10, 20, 30].into_iter().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, &x)| (i.0, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn debug_uses_prefix() {
        assert_eq!(format!("{:?}", TestId(7)), "t7");
    }

    #[test]
    fn next_index_matches_push() {
        let mut v: IndexVec<TestId, u8> = IndexVec::new();
        let predicted = v.next_index();
        let actual = v.push(0);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn get_bounds() {
        let v: IndexVec<TestId, u8> = [1].into_iter().collect();
        assert_eq!(v.get(TestId(0)), Some(&1));
        assert_eq!(v.get(TestId(1)), None);
    }
}
