//! Global string interning.
//!
//! Identifiers flow through every stage of the compiler (AST, HIR, dependency
//! graph, scheduler, code generator), so they are interned once into
//! copyable [`Symbol`]s. Deduplication still goes through a `RwLock`-guarded
//! map (interning a *new* string is rare after startup), but resolution is
//! lock-free: [`Symbol::as_str`] is an index load from an append-only
//! segmented arena, so rendering, `Display` and `Ord` comparisons never
//! touch a lock.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::fxhash::FxHashMap;
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash and compare; ordering compares the
/// underlying strings so rendered output is deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// First segment holds `1 << SEG0_BITS` entries; each next segment doubles.
const SEG0_BITS: u32 = 6;
/// 26 doubling segments cover the whole `u32` id space.
const N_SEGMENTS: usize = 26;

type Slot = UnsafeCell<MaybeUninit<&'static str>>;

/// Append-only symbol arena: segment `k` is a lazily allocated, never-freed
/// block of `64 << k` slots. A slot is written exactly once — under the
/// interner write lock, *before* its id is published — and never moves, so
/// readers can dereference it without synchronizing with writers beyond the
/// `Acquire` load of the segment pointer.
struct Arena {
    segments: [AtomicPtr<Slot>; N_SEGMENTS],
    /// Ids below this are initialized (`Release`-published after the slot
    /// write; the happens-before edge for readers is carried both by this
    /// counter and by whatever channel handed them the `Symbol`).
    published: AtomicU32,
}

// SAFETY: slots are written once before publication and never mutated after;
// all cross-thread access to a slot is ordered by the publication edge.
unsafe impl Sync for Arena {}

static ARENA: Arena = Arena {
    segments: [const { AtomicPtr::new(std::ptr::null_mut()) }; N_SEGMENTS],
    published: AtomicU32::new(0),
};

/// Map an id to its (segment, offset) pair.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let n = id + (1 << SEG0_BITS);
    let k = 31 - n.leading_zeros();
    ((k - SEG0_BITS) as usize, (n - (1u32 << k)) as usize)
}

/// Slot count of segment `seg`.
#[inline]
fn seg_len(seg: usize) -> usize {
    1usize << (seg as u32 + SEG0_BITS)
}

/// Deduplication map (string → id). Only [`Symbol::intern`] takes this lock.
struct Interner {
    map: FxHashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        // Leaking is bounded by the set of distinct identifiers in the
        // session; this is the standard rustc-style interner trade-off.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = ARENA.published.load(Ordering::Relaxed);
        let (seg, off) = locate(id);
        let mut seg_ptr = ARENA.segments[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            // First id of this segment: allocate it (we hold the write
            // lock, so no other thread races this store).
            let block: Box<[Slot]> = (0..seg_len(seg))
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect();
            seg_ptr = Box::leak(block).as_mut_ptr();
            ARENA.segments[seg].store(seg_ptr, Ordering::Release);
        }
        // SAFETY: `off < seg_len(seg)` by construction of `locate`, and no
        // reader can hold id yet (it is published below).
        unsafe {
            (*seg_ptr.add(off)).get().write(MaybeUninit::new(leaked));
        }
        ARENA.published.store(id + 1, Ordering::Release);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolve back to the interned string — a lock-free arena load.
    pub fn as_str(&self) -> &'static str {
        let (seg, off) = locate(self.0);
        debug_assert!(
            self.0 < ARENA.published.load(Ordering::Acquire),
            "symbol id {} outside the published arena",
            self.0
        );
        let seg_ptr = ARENA.segments[seg].load(Ordering::Acquire);
        debug_assert!(!seg_ptr.is_null());
        // SAFETY: a `Symbol` can only be obtained from `intern`, which
        // initializes the slot and publishes the id before returning; the
        // channel that delivered the symbol to this thread carries the
        // happens-before edge to that write.
        unsafe { (*seg_ptr.add(off)).get().read().assume_init() }
    }

    /// The raw interner index (stable within a process run only).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("relaxation");
        let b = Symbol::intern("relaxation");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "relaxation");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("K");
        let b = Symbol::intern("K'");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to make sure ordering is not by id.
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z);
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("newA");
        assert_eq!(format!("{s}"), "newA");
        assert_eq!(format!("{s:?}"), "\"newA\"");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared-name").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn locate_maps_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        // Every id maps inside its segment, and consecutive ids are
        // contiguous within a segment.
        for id in 0..100_000u32 {
            let (seg, off) = locate(id);
            assert!(off < seg_len(seg), "id {id}: off {off} seg {seg}");
        }
    }

    #[test]
    fn arena_survives_segment_growth() {
        // Intern enough distinct strings to force several segment
        // allocations, then resolve all of them back.
        let syms: Vec<(Symbol, String)> = (0..300)
            .map(|i| {
                let s = format!("growth_test_{i}");
                (Symbol::intern(&s), s)
            })
            .collect();
        for (sym, s) in &syms {
            assert_eq!(sym.as_str(), s);
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        // Writers intern fresh strings while readers resolve existing
        // symbols; exercises the publication ordering under load.
        let base: Vec<Symbol> = (0..64)
            .map(|i| Symbol::intern(&format!("rw_base_{i}")))
            .collect();
        let writers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let s = format!("rw_new_{t}_{i}");
                        assert_eq!(Symbol::intern(&s).as_str(), s);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let base = base.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        for (i, s) in base.iter().enumerate() {
                            assert_eq!(s.as_str(), format!("rw_base_{i}"));
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
    }
}
