//! Global string interning.
//!
//! Identifiers flow through every stage of the compiler (AST, HIR, dependency
//! graph, scheduler, code generator), so they are interned once into
//! copyable [`Symbol`]s. The interner is a process-global table guarded by a
//! `std::sync::RwLock`; resolving a `Symbol` back to `&'static str` takes
//! the (uncontended) read lock on each call.

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash and compare; ordering compares the
/// underlying strings so rendered output is deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        // Leaking is bounded by the set of distinct identifiers in the
        // session; this is the standard rustc-style interner trade-off.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolve back to the interned string.
    pub fn as_str(&self) -> &'static str {
        interner().read().unwrap_or_else(|e| e.into_inner()).strings[self.0 as usize]
    }

    /// The raw interner index (stable within a process run only).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("relaxation");
        let b = Symbol::intern("relaxation");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "relaxation");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("K");
        let b = Symbol::intern("K'");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to make sure ordering is not by id.
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z);
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("newA");
        assert_eq!(format!("{s}"), "newA");
        assert_eq!(format!("{s:?}"), "\"newA\"");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared-name").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
