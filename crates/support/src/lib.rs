//! Shared substrate for the PS compiler workspace.
//!
//! This crate holds the infrastructure every other crate leans on:
//!
//! * [`span`] — byte spans and the [`source::SourceMap`] that resolves them
//!   to file/line/column positions,
//! * [`diag`] — structured diagnostics with severities, error codes and
//!   rendered source excerpts,
//! * [`intern`] — a global string interner producing copyable [`intern::Symbol`]s,
//! * [`fxhash`] — the Fx multiply-xor hasher (deterministic, fast for the
//!   small integer/symbol keys the compiler uses everywhere), vendored so
//!   the workspace stays free of external crates,
//! * [`idx`] — strongly-typed index newtypes and [`idx::IndexVec`],
//! * [`pretty`] — an indenting text writer used by all renderers,
//! * [`rng`] — a seeded LCG driving the deterministic property tests,
//! * [`faults`] — the seeded fault-injection switchboard the chaos suites
//!   drive (worker panics, slow solves, socket stalls, ...).
//!
//! Nothing in here is specific to the PS language; it is the kind of support
//! layer the paper's 24,000-line Pascal implementation would have carried
//! implicitly.

pub mod diag;
pub mod faults;
pub mod fxhash;
pub mod idx;
pub mod intern;
pub mod pretty;
pub mod rng;
pub mod source;
pub mod span;

pub use diag::{Diagnostic, DiagnosticSink, Severity};
pub use faults::{FaultInjector, FaultPoint, FaultSpec};
pub use fxhash::{FxHashMap, FxHashSet};
pub use intern::Symbol;
pub use rng::Lcg;
pub use source::{FileId, SourceMap};
pub use span::Span;
