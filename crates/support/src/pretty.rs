//! Indenting text writer used by every renderer (flowcharts, C code, DOT,
//! PS pretty-printing).

use std::fmt::Write as _;

/// Accumulates text with automatic indentation at line starts.
pub struct PrettyWriter {
    buf: String,
    indent: usize,
    indent_str: &'static str,
    at_line_start: bool,
}

impl PrettyWriter {
    pub fn new() -> PrettyWriter {
        PrettyWriter::with_indent_str("    ")
    }

    /// Use a custom indentation unit (e.g. two spaces for flowcharts).
    pub fn with_indent_str(indent_str: &'static str) -> PrettyWriter {
        PrettyWriter {
            buf: String::new(),
            indent: 0,
            indent_str,
            at_line_start: true,
        }
    }

    fn pad(&mut self) {
        if self.at_line_start {
            for _ in 0..self.indent {
                self.buf.push_str(self.indent_str);
            }
            self.at_line_start = false;
        }
    }

    /// Write text without a trailing newline. Embedded newlines re-trigger
    /// indentation for the following text.
    pub fn write(&mut self, text: &str) {
        let mut parts = text.split('\n');
        if let Some(first) = parts.next() {
            if !first.is_empty() {
                self.pad();
                self.buf.push_str(first);
            }
        }
        for part in parts {
            self.buf.push('\n');
            self.at_line_start = true;
            if !part.is_empty() {
                self.pad();
                self.buf.push_str(part);
            }
        }
    }

    /// Write a full line (appends a newline).
    pub fn line(&mut self, text: &str) {
        self.write(text);
        self.newline();
    }

    /// Write a formatted full line.
    pub fn linef(&mut self, args: std::fmt::Arguments<'_>) {
        self.pad();
        self.buf.write_fmt(args).expect("string write cannot fail");
        self.newline();
    }

    /// End the current line.
    pub fn newline(&mut self) {
        self.buf.push('\n');
        self.at_line_start = true;
    }

    /// Emit a blank line (only if not already at one).
    pub fn blank(&mut self) {
        if !self.buf.is_empty() && !self.buf.ends_with("\n\n") {
            if !self.at_line_start {
                self.newline();
            }
            self.buf.push('\n');
        }
    }

    pub fn indent(&mut self) {
        self.indent += 1;
    }

    pub fn dedent(&mut self) {
        debug_assert!(self.indent > 0, "dedent below zero");
        self.indent = self.indent.saturating_sub(1);
    }

    /// Run `body` one level deeper.
    pub fn indented(&mut self, body: impl FnOnce(&mut PrettyWriter)) {
        self.indent();
        body(self);
        self.dedent();
    }

    /// Open with `open`, run `body` indented, close with `close` — the
    /// `{ ... }` / `( ... )` block pattern.
    pub fn block(&mut self, open: &str, close: &str, body: impl FnOnce(&mut PrettyWriter)) {
        self.line(open);
        self.indented(body);
        self.line(close);
    }

    pub fn finish(self) -> String {
        self.buf
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

impl Default for PrettyWriter {
    fn default() -> Self {
        PrettyWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indents_nested_blocks() {
        let mut w = PrettyWriter::with_indent_str("  ");
        w.block("DO K (", ")", |w| {
            w.block("DOALL I (", ")", |w| {
                w.line("eq.3");
            });
        });
        assert_eq!(w.finish(), "DO K (\n  DOALL I (\n    eq.3\n  )\n)\n");
    }

    #[test]
    fn write_handles_embedded_newlines() {
        let mut w = PrettyWriter::with_indent_str(">");
        w.indent();
        w.write("a\nb");
        w.newline();
        assert_eq!(w.finish(), ">a\n>b\n");
    }

    #[test]
    fn blank_collapses_duplicates() {
        let mut w = PrettyWriter::new();
        w.line("x");
        w.blank();
        w.blank();
        w.line("y");
        assert_eq!(w.finish(), "x\n\ny\n");
    }

    #[test]
    fn linef_formats() {
        let mut w = PrettyWriter::new();
        w.linef(format_args!("window = {}", 2));
        assert_eq!(w.finish(), "window = 2\n");
    }
}
