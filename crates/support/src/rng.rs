//! A tiny deterministic pseudo-random generator for property tests and
//! synthetic workloads.
//!
//! The workspace is std-only, so instead of `proptest`/`rand` the property
//! suites drive themselves from this seeded linear congruential generator
//! (Knuth's MMIX constants) with an xorshift output scramble. Determinism
//! is the point: every test run explores exactly the same cases, and a
//! failing case can be reported by its seed and index alone.

/// Seeded linear congruential generator.
///
/// Not cryptographic, not for statistics — just a fast, portable,
/// reproducible stream with good enough low-bit behaviour for test-case
/// generation (the output mixes the high bits in).
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Lcg {
        // Spread small seeds (0, 1, 2, ...) across the state space so
        // early outputs of nearby seeds are uncorrelated.
        let mut lcg = Lcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        lcg.next_u64();
        lcg
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // MMIX LCG step, then xorshift to mix high bits into the low ones.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Uniform integer in the inclusive range `lo..=hi`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform usize in the inclusive range `lo..=hi`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.int(lo as i64, hi as i64) as usize
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of length `lo_len..=hi_len` with elements from `gen`.
    pub fn vec_of<T>(
        &mut self,
        lo_len: usize,
        hi_len: usize,
        mut gen: impl FnMut(&mut Lcg) -> T,
    ) -> Vec<T> {
        let len = self.usize(lo_len, hi_len);
        (0..len).map(|_| gen(self)).collect()
    }

    /// A nonempty subsequence of `menu` (order preserved) with between
    /// `lo` and `hi` elements, like proptest's `sample::subsequence`.
    pub fn subsequence<T: Clone>(&mut self, menu: &[T], lo: usize, hi: usize) -> Vec<T> {
        let hi = hi.min(menu.len());
        let want = self.usize(lo.min(hi), hi);
        let mut picked = vec![false; menu.len()];
        let mut chosen = 0;
        while chosen < want {
            let i = self.index(menu.len());
            if !picked[i] {
                picked[i] = true;
                chosen += 1;
            }
        }
        menu.iter()
            .zip(&picked)
            .filter(|(_, &p)| p)
            .map(|(t, _)| t.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_respects_bounds() {
        let mut r = Lcg::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.int(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let menu = [10, 20, 30, 40];
        let mut r = Lcg::new(99);
        for _ in 0..200 {
            let s = r.subsequence(&menu, 1, 3);
            assert!((1..=3).contains(&s.len()));
            let mut sorted = s.clone();
            sorted.sort();
            assert_eq!(s, sorted, "menu order preserved");
        }
    }

    #[test]
    fn vec_of_length_in_range() {
        let mut r = Lcg::new(5);
        for _ in 0..100 {
            let v = r.vec_of(0, 4, |r| r.int(0, 9));
            assert!(v.len() <= 4);
        }
    }
}
