//! A tiny deterministic pseudo-random generator for property tests and
//! synthetic workloads, plus a shrinking property-check driver.
//!
//! The workspace is std-only, so instead of `proptest`/`rand` the property
//! suites drive themselves from this seeded linear congruential generator
//! (Knuth's MMIX constants) with an xorshift output scramble. Determinism
//! is the point: every test run explores exactly the same cases, and a
//! failing case can be reported by its seed and index alone.
//!
//! [`check`] adds the missing proptest feature: when a case fails, it
//! greedily applies caller-provided shrink candidates (see [`shrink_vec`]
//! for the standard halving + index-bisection sequence) until none fails,
//! then panics with the minimized case and the exact [`Lcg::state`] that
//! replays the original.

/// Seeded linear congruential generator.
///
/// Not cryptographic, not for statistics — just a fast, portable,
/// reproducible stream with good enough low-bit behaviour for test-case
/// generation (the output mixes the high bits in).
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Lcg {
        // Spread small seeds (0, 1, 2, ...) across the state space so
        // early outputs of nearby seeds are uncorrelated.
        let mut lcg = Lcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        lcg.next_u64();
        lcg
    }

    /// The raw generator state. Capture it before generating a case and the
    /// case can be replayed exactly with [`Lcg::from_state`], without
    /// re-running the stream from the seed.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Resume from a state captured with [`Lcg::state`]. Unlike
    /// [`Lcg::new`], no scrambling is applied: `from_state(g.state())`
    /// continues exactly where `g` was.
    pub fn from_state(state: u64) -> Lcg {
        Lcg { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // MMIX LCG step, then xorshift to mix high bits into the low ones.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Uniform integer in the inclusive range `lo..=hi`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform usize in the inclusive range `lo..=hi`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.int(lo as i64, hi as i64) as usize
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of length `lo_len..=hi_len` with elements from `gen`.
    pub fn vec_of<T>(
        &mut self,
        lo_len: usize,
        hi_len: usize,
        mut gen: impl FnMut(&mut Lcg) -> T,
    ) -> Vec<T> {
        let len = self.usize(lo_len, hi_len);
        (0..len).map(|_| gen(self)).collect()
    }

    /// A nonempty subsequence of `menu` (order preserved) with between
    /// `lo` and `hi` elements, like proptest's `sample::subsequence`.
    pub fn subsequence<T: Clone>(&mut self, menu: &[T], lo: usize, hi: usize) -> Vec<T> {
        let hi = hi.min(menu.len());
        let want = self.usize(lo.min(hi), hi);
        let mut picked = vec![false; menu.len()];
        let mut chosen = 0;
        while chosen < want {
            let i = self.index(menu.len());
            if !picked[i] {
                picked[i] = true;
                chosen += 1;
            }
        }
        menu.iter()
            .zip(&picked)
            .filter(|(_, &p)| p)
            .map(|(t, _)| t.clone())
            .collect()
    }
}

/// A property outcome: `Ok(())` or a failure description.
pub type PropResult = Result<(), String>;

/// Cap on greedy shrink steps, so a pathological shrink function cannot
/// loop forever.
const MAX_SHRINK_STEPS: usize = 10_000;

/// Run `cases` deterministic cases of `gen` against `prop`; on failure,
/// greedily shrink before panicking.
///
/// * `gen` draws one case from the stream — the same closure the
///   non-shrinking suites already use, so adopting `check` does not change
///   which cases run.
/// * `shrink` proposes strictly simpler variants of a failing case (see
///   [`shrink_vec`]); return an empty vector for atomic cases.
/// * `prop` checks one case. Panics inside the property are caught and
///   treated as failures, so `assert!`-style properties shrink too.
///
/// The final panic message names the failing case index, the minimized
/// case, both failure messages, and the `Lcg` state that replays the
/// original case via [`Lcg::from_state`].
pub fn check<T, G, S, P>(seed: u64, cases: usize, gen: G, shrink: S, prop: P)
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut Lcg) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> PropResult,
{
    let run = |value: &T| -> PropResult {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
            Ok(r) => r,
            Err(payload) => Err(format!("panic: {}", panic_message(payload))),
        }
    };
    let mut rng = Lcg::new(seed);
    for case in 0..cases {
        let state = rng.state();
        let value = gen(&mut rng);
        let Err(original_failure) = run(&value) else {
            continue;
        };
        // Greedy descent: take the first failing candidate, repeat from it.
        // The default panic hook is silenced for the duration — every
        // failing probe is a *caught* panic, and hundreds of backtraces
        // would bury the final minimized report (proptest does the same).
        //
        // The hook is process-global, so swapping it is serialized by a
        // lock (several failing property tests may shrink on parallel test
        // threads) and restored by a drop guard (a panicking `shrink` or
        // `clone` must not leak the silencer into later tests).
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        struct RestoreHook {
            prev: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>>,
        }
        impl Drop for RestoreHook {
            fn drop(&mut self) {
                if let Some(prev) = self.prev.take() {
                    std::panic::set_hook(prev);
                }
            }
        }
        // The final report panics while the lock is held: ignore poisoning.
        let _hook_lock = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut restore = RestoreHook {
            prev: Some(std::panic::take_hook()),
        };
        std::panic::set_hook(Box::new(|_| {}));
        let mut minimized = value.clone();
        let mut min_failure = original_failure.clone();
        let mut steps = 0;
        'descent: while steps < MAX_SHRINK_STEPS {
            for cand in shrink(&minimized) {
                if let Err(msg) = run(&cand) {
                    minimized = cand;
                    min_failure = msg;
                    steps += 1;
                    continue 'descent;
                }
            }
            break;
        }
        // Restore before the final panic so the report is printed (the
        // guard then has nothing left to do on unwind).
        if let Some(prev) = restore.prev.take() {
            std::panic::set_hook(prev);
        }
        panic!(
            "property failed at case {case}/{cases} (seed {seed:#x})\n\
             original case: {value:?}\n\
             original failure: {original_failure}\n\
             minimized case ({steps} shrink steps): {minimized:?}\n\
             minimized failure: {min_failure}\n\
             repro: regenerate with Lcg::from_state({state:#x})"
        );
    }
}

/// Extract a human-readable message from a caught panic payload (the
/// `Box<dyn Any>` `catch_unwind` returns). Shared by the shrinking driver
/// here and by panic-isolating servers (`ps-service`).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Standard shrink candidates for a vector-shaped case, in the order the
/// greedy driver should try them:
///
/// 1. **Halving**: the back half, then the front half (cuts case size
///    exponentially while a half still fails);
/// 2. **Index bisection**: single-element removals, visiting indices in
///    binary-subdivision order (middle first, then quarter points, ...) so
///    the culprit element is isolated in `O(log n)` failing probes once
///    halving stalls.
///
/// Candidates shorter than `min_len` are not proposed.
pub fn shrink_vec<T: Clone>(v: &[T], min_len: usize) -> Vec<Vec<T>> {
    let n = v.len();
    let mut out = Vec::new();
    if n > min_len {
        if n / 2 >= min_len && n >= 2 {
            out.push(v[n / 2..].to_vec());
            out.push(v[..n.div_ceil(2)].to_vec());
        }
        if n - 1 >= min_len {
            for i in bisection_order(n) {
                let mut smaller = v.to_vec();
                smaller.remove(i);
                out.push(smaller);
            }
        }
    }
    out
}

/// Indices `0..n` in binary-subdivision order: midpoint first, then the
/// midpoints of each half, and so on.
fn bisection_order(n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    if n > 0 {
        queue.push_back((0, n));
    }
    while let Some((lo, hi)) = queue.pop_front() {
        let mid = (lo + hi) / 2;
        order.push(mid);
        if mid > lo {
            queue.push_back((lo, mid));
        }
        if mid + 1 < hi {
            queue.push_back((mid + 1, hi));
        }
    }
    order
}

/// Shrink candidates for a bounded integer: pull toward `lo`
/// (the "smallest" legal value) by halving the distance.
pub fn shrink_int(v: i64, lo: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut d = v - lo;
    while d != 0 {
        out.push(lo + d / 2);
        d /= 2;
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_respects_bounds() {
        let mut r = Lcg::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.int(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let menu = [10, 20, 30, 40];
        let mut r = Lcg::new(99);
        for _ in 0..200 {
            let s = r.subsequence(&menu, 1, 3);
            assert!((1..=3).contains(&s.len()));
            let mut sorted = s.clone();
            sorted.sort();
            assert_eq!(s, sorted, "menu order preserved");
        }
    }

    #[test]
    fn vec_of_length_in_range() {
        let mut r = Lcg::new(5);
        for _ in 0..100 {
            let v = r.vec_of(0, 4, |r| r.int(0, 9));
            assert!(v.len() <= 4);
        }
    }

    #[test]
    fn state_round_trips() {
        let mut a = Lcg::new(123);
        a.next_u64();
        a.next_u64();
        let snap = a.state();
        let from_a: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let mut b = Lcg::from_state(snap);
        let from_b: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(from_a, from_b, "from_state resumes the exact stream");
    }

    #[test]
    fn bisection_order_is_a_permutation() {
        for n in [0usize, 1, 2, 3, 7, 8, 100] {
            let mut order = bisection_order(n);
            assert_eq!(order.len(), n);
            order.sort();
            assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
        // Midpoint first.
        assert_eq!(bisection_order(8)[0], 4);
    }

    #[test]
    fn shrink_vec_respects_min_len_and_halves_first() {
        let v = [1, 2, 3, 4, 5, 6];
        let cands = shrink_vec(&v, 1);
        assert_eq!(cands[0], vec![4, 5, 6], "back half first");
        assert_eq!(cands[1], vec![1, 2, 3], "front half second");
        assert!(cands.iter().all(|c| c.len() >= 1));
        // Single-element removals follow.
        assert!(cands[2..].iter().all(|c| c.len() == 5));
        // At min_len, nothing is proposed.
        assert!(shrink_vec(&[1], 1).is_empty());
        assert!(shrink_vec::<i32>(&[], 0).is_empty());
    }

    #[test]
    fn shrink_int_pulls_toward_lo() {
        assert_eq!(shrink_int(9, 1), vec![5, 3, 2, 1]);
        assert!(shrink_int(1, 1).is_empty());
        let toward_zero = shrink_int(100, 0);
        assert_eq!(toward_zero.first(), Some(&50));
        assert_eq!(toward_zero.last(), Some(&0));
    }

    #[test]
    fn check_passes_quietly_on_true_property() {
        check(
            7,
            50,
            |r| r.vec_of(0, 8, |r| r.int(0, 9)),
            |v| shrink_vec(v, 0),
            |v| {
                if v.iter().all(|&x| x < 10) {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            },
        );
    }

    #[test]
    fn check_shrinks_to_a_minimal_counterexample() {
        // Property: no element is >= 100. The generator eventually emits
        // one; shrinking must isolate it as a single-element vector.
        let outcome = std::panic::catch_unwind(|| {
            check(
                42,
                200,
                |r| r.vec_of(0, 12, |r| r.int(0, 120)),
                |v| shrink_vec(v, 0),
                |v: &Vec<i64>| {
                    if let Some(&bad) = v.iter().find(|&&x| x >= 100) {
                        Err(format!("element {bad} out of range"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = panic_message(outcome.expect_err("property must fail"));
        assert!(msg.contains("minimized case"), "{msg}");
        assert!(
            msg.contains("repro: regenerate with Lcg::from_state"),
            "{msg}"
        );
        // The minimized vector has exactly one element (the culprit).
        let min_line = msg
            .lines()
            .find(|l| l.contains("minimized case"))
            .unwrap()
            .to_string();
        let commas = min_line.matches(", ").count();
        assert_eq!(commas, 0, "single-element minimum: {min_line}");
    }

    #[test]
    fn check_catches_panicking_properties() {
        let outcome = std::panic::catch_unwind(|| {
            check(
                1,
                20,
                |r| r.int(0, 50),
                |&v| shrink_int(v, 0),
                |&v| {
                    assert!(v < 40, "too big: {v}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(outcome.expect_err("assert inside prop must fail"));
        assert!(msg.contains("panic: too big"), "{msg}");
        // shrink_int pulls to the boundary value 40.
        assert!(msg.contains("minimized"), "{msg}");
    }
}
