//! Source file registry and span resolution.

use crate::span::Span;
use std::fmt;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

/// A 1-based line/column position produced by [`SourceMap::lookup`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

struct SourceFile {
    name: String,
    text: String,
    /// Byte offset of the start of each line, always beginning with 0.
    line_starts: Vec<u32>,
}

/// Owns the text of every source file in a compilation session and resolves
/// [`Span`]s to human-readable positions.
#[derive(Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Register a file and return its id. The text is stored verbatim.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<String>) -> FileId {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        self.files.push(SourceFile {
            name: name.into(),
            text,
            line_starts,
        });
        FileId(self.files.len() as u32 - 1)
    }

    /// The registered name of `file`.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name
    }

    /// The full text of `file`.
    pub fn file_text(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].text
    }

    /// The text covered by `span` within `file`.
    pub fn snippet(&self, file: FileId, span: Span) -> &str {
        let text = self.file_text(file);
        let lo = (span.lo as usize).min(text.len());
        let hi = (span.hi as usize).min(text.len());
        &text[lo..hi]
    }

    /// Resolve a byte offset to a 1-based line/column pair.
    pub fn lookup(&self, file: FileId, offset: u32) -> LineCol {
        let f = &self.files[file.0 as usize];
        let line_idx = match f.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let line_start = f.line_starts[line_idx];
        // Column is measured in bytes; the PS language is ASCII so this
        // matches characters for all real inputs.
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - line_start + 1,
        }
    }

    /// The full source line (without trailing newline) containing `offset`.
    pub fn line_text(&self, file: FileId, offset: u32) -> &str {
        let f = &self.files[file.0 as usize];
        let lc = self.lookup(file, offset);
        let start = f.line_starts[lc.line as usize - 1] as usize;
        let end = f
            .line_starts
            .get(lc.line as usize)
            .map(|&e| e as usize)
            .unwrap_or(f.text.len());
        f.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_first_line() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.ps", "hello\nworld\n");
        assert_eq!(sm.lookup(f, 0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(f, 4), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn lookup_later_lines() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.ps", "hello\nworld\nlast");
        assert_eq!(sm.lookup(f, 6), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(f, 12), LineCol { line: 3, col: 1 });
        assert_eq!(sm.lookup(f, 15), LineCol { line: 3, col: 4 });
    }

    #[test]
    fn snippet_and_line_text() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.ps", "alpha\nbeta gamma\n");
        assert_eq!(sm.snippet(f, Span::new(6, 10)), "beta");
        assert_eq!(sm.line_text(f, 8), "beta gamma");
        assert_eq!(sm.line_text(f, 0), "alpha");
    }

    #[test]
    fn lookup_on_line_boundary_points_at_line_start() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("a.ps", "ab\ncd");
        // Offset 3 is the 'c' that starts line 2.
        assert_eq!(sm.lookup(f, 3), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn multiple_files_are_independent() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.ps", "one");
        let b = sm.add_file("b.ps", "two two");
        assert_eq!(sm.file_name(a), "a.ps");
        assert_eq!(sm.file_name(b), "b.ps");
        assert_eq!(sm.file_text(b), "two two");
        assert_eq!(sm.len(), 2);
    }
}
