//! Byte spans into source text.

use std::fmt;

/// A half-open byte range `[lo, hi)` within a single source file.
///
/// Spans are deliberately tiny (8 bytes) because every token, AST node and
/// diagnostic carries one. The owning [`crate::source::SourceMap`] knows which
/// file a span belongs to; spans themselves are file-relative offsets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub lo: u32,
    /// Exclusive end byte offset.
    pub hi: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Create a span from byte offsets. `lo` must not exceed `hi`.
    pub fn new(lo: u32, hi: u32) -> Span {
        debug_assert!(lo <= hi, "span lo {lo} > hi {hi}");
        Span { lo, hi }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// True for the placeholder [`Span::DUMMY`].
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// A dummy span is the identity element, so joining a synthesized node
    /// with a real one keeps the real location.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// A zero-width span at the start of this one (useful for "expected X
    /// before ..." diagnostics).
    pub fn shrink_to_lo(self) -> Span {
        Span::new(self.lo, self.lo)
    }

    /// A zero-width span at the end of this one.
    pub fn shrink_to_hi(self) -> Span {
        Span::new(self.hi, self.hi)
    }

    /// True when `other` is fully contained in `self`.
    pub fn contains(&self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_orders_endpoints() {
        let a = Span::new(4, 9);
        let b = Span::new(1, 6);
        assert_eq!(a.to(b), Span::new(1, 9));
        assert_eq!(b.to(a), Span::new(1, 9));
    }

    #[test]
    fn dummy_is_identity_for_join() {
        let a = Span::new(10, 20);
        assert_eq!(a.to(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.to(a), a);
    }

    #[test]
    fn contains_and_shrink() {
        let a = Span::new(2, 10);
        assert!(a.contains(Span::new(2, 2)));
        assert!(a.contains(Span::new(5, 10)));
        assert!(!a.contains(Span::new(5, 11)));
        assert_eq!(a.shrink_to_lo(), Span::new(2, 2));
        assert_eq!(a.shrink_to_hi(), Span::new(10, 10));
        assert!(a.shrink_to_hi().is_empty());
    }

    #[test]
    fn len_reports_byte_width() {
        assert_eq!(Span::new(3, 8).len(), 5);
        assert!(!Span::new(3, 8).is_empty());
    }
}
