//! The fixed-size event model shared by every ring buffer.
//!
//! An event is five 64-bit words: a nanosecond timestamp (monotonic,
//! relative to the process trace epoch), a packed kind+phase word, a span
//! id, and two payload words whose meaning is per-kind (see the table on
//! [`EvKind`]). Thread identity is implied by the ring an event lives in.

/// What happened. Payload conventions (`a`/`b` are [`Event::a`] /
/// [`Event::b`]; "label" means an id from [`crate::label()`]):
///
/// | kind          | phase     | `a`                   | `b`              |
/// |---------------|-----------|-----------------------|------------------|
/// | `FrameRead`   | instant   | frame bytes           | connection id    |
/// | `Parse`       | complete  | duration ns           | connection id    |
/// | `Reply`       | complete  | duration ns           | request span     |
/// | `Enqueue`     | instant   | request span          | queue depth      |
/// | `Dequeue`     | instant   | request span          | queue depth      |
/// | `QueueWait`   | complete  | duration ns           | request span     |
/// | `Batch`       | instant   | batch size            | program label    |
/// | `RegistryHit` | instant   | key hash              | 0                |
/// | `RegistryMiss`| instant   | key hash              | 0                |
/// | `Compile`     | begin/end | key hash              | 0                |
/// | `SpecHit`     | instant   | spec-cache size       | 0                |
/// | `SpecBuild`   | complete  | duration ns           | spec-cache size  |
/// | `Solve`       | begin/end | program label         | batch index      |
/// | `Region`      | begin/end | equation label        | total items      |
/// | `Publish`     | begin/end | total items           | lane index       |
/// | `Chunk`       | complete  | duration ns           | chunk start idx  |
/// | `Steal`       | instant   | region epoch          | items drained    |
/// | `Nested`      | instant   | region epoch          | total items      |
/// | `Cancel`      | instant   | region epoch          | items skipped    |
/// | `Fault`       | instant   | fault-point label     | 0                |
/// | `Panic`       | instant   | program label         | request span     |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EvKind {
    FrameRead = 1,
    Parse = 2,
    Reply = 3,
    Enqueue = 4,
    Dequeue = 5,
    QueueWait = 6,
    Batch = 7,
    RegistryHit = 8,
    RegistryMiss = 9,
    Compile = 10,
    SpecHit = 11,
    SpecBuild = 12,
    Solve = 13,
    Region = 14,
    Publish = 15,
    Chunk = 16,
    Steal = 17,
    Nested = 18,
    Cancel = 19,
    Fault = 20,
    Panic = 21,
}

impl EvKind {
    /// Stable lowercase name, used by the exporter and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            EvKind::FrameRead => "frame_read",
            EvKind::Parse => "parse",
            EvKind::Reply => "reply",
            EvKind::Enqueue => "enqueue",
            EvKind::Dequeue => "dequeue",
            EvKind::QueueWait => "queue_wait",
            EvKind::Batch => "batch",
            EvKind::RegistryHit => "registry_hit",
            EvKind::RegistryMiss => "registry_miss",
            EvKind::Compile => "compile",
            EvKind::SpecHit => "spec_hit",
            EvKind::SpecBuild => "spec_build",
            EvKind::Solve => "solve",
            EvKind::Region => "region",
            EvKind::Publish => "publish",
            EvKind::Chunk => "chunk",
            EvKind::Steal => "steal",
            EvKind::Nested => "nested",
            EvKind::Cancel => "cancel",
            EvKind::Fault => "fault",
            EvKind::Panic => "panic",
        }
    }

    pub fn from_u8(v: u8) -> Option<EvKind> {
        Some(match v {
            1 => EvKind::FrameRead,
            2 => EvKind::Parse,
            3 => EvKind::Reply,
            4 => EvKind::Enqueue,
            5 => EvKind::Dequeue,
            6 => EvKind::QueueWait,
            7 => EvKind::Batch,
            8 => EvKind::RegistryHit,
            9 => EvKind::RegistryMiss,
            10 => EvKind::Compile,
            11 => EvKind::SpecHit,
            12 => EvKind::SpecBuild,
            13 => EvKind::Solve,
            14 => EvKind::Region,
            15 => EvKind::Publish,
            16 => EvKind::Chunk,
            17 => EvKind::Steal,
            18 => EvKind::Nested,
            19 => EvKind::Cancel,
            20 => EvKind::Fault,
            21 => EvKind::Panic,
            _ => return None,
        })
    }

    /// Whether payload `a` is a [`crate::label()`] id worth resolving for
    /// humans (exporter args, flight dumps, CLI summaries).
    pub fn a_is_label(self) -> bool {
        matches!(
            self,
            EvKind::Solve | EvKind::Region | EvKind::Fault | EvKind::Panic
        )
    }
}

/// How an event relates to time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// A span opens at this timestamp (matched by an `End` on the same
    /// thread; spans on one thread nest by time).
    Begin = 0,
    /// The innermost open span of this kind on this thread closes.
    End = 1,
    /// A point event.
    Instant = 2,
    /// A completed interval recorded after the fact: payload `a` holds the
    /// duration in nanoseconds and the timestamp marks the *end*.
    Complete = 3,
}

impl Phase {
    pub fn from_u8(v: u8) -> Option<Phase> {
        Some(match v {
            0 => Phase::Begin,
            1 => Phase::End,
            2 => Phase::Instant,
            3 => Phase::Complete,
            _ => return None,
        })
    }
}

/// A decoded event, as returned by ring snapshots.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Nanoseconds since the process trace epoch.
    pub ts: u64,
    pub kind: EvKind,
    pub phase: Phase,
    pub span: u64,
    pub a: u64,
    pub b: u64,
}
