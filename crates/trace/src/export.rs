//! Chrome `trace_event` JSON export.
//!
//! Serializes ring snapshots into the Trace Event Format consumed by
//! `chrome://tracing` / Perfetto: a JSON array of objects with `name`,
//! `ph` (B/E/X/i), `ts`/`dur` in microseconds, `pid`/`tid`, and an `args`
//! object carrying the raw payload words plus resolved labels. Records
//! are globally sorted by start timestamp (stable, so per-thread order —
//! and therefore B/E nesting — is preserved), which also makes the file
//! trivially checkable for timestamp monotonicity.

use crate::event::Phase;
use crate::label::label_name;
use crate::ring::ThreadEvents;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision: `123.456`.
pub(crate) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

struct Record {
    /// Sort key: the record's *start* time in ns (for `X` events the
    /// timestamp minus the duration).
    start_ns: u64,
    json: String,
}

/// Render a snapshot as a Chrome trace JSON array (one record per line).
pub fn chrome_trace_json(snap: &[ThreadEvents]) -> String {
    let mut records: Vec<Record> = Vec::new();
    for t in snap {
        let tname = esc(&t.name);
        for e in &t.events {
            let (ph, start_ns, dur_ns) = match e.phase {
                Phase::Begin => ("B", e.ts, None),
                Phase::End => ("E", e.ts, None),
                Phase::Instant => ("i", e.ts, None),
                Phase::Complete => ("X", e.ts.saturating_sub(e.a), Some(e.a)),
            };
            let mut json = format!(
                "{{\"name\":\"{}\",\"cat\":\"ps\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                e.kind.name(),
                ph,
                us(start_ns),
                t.tid
            );
            if let Some(d) = dur_ns {
                let _ = write!(json, ",\"dur\":{}", us(d));
            }
            if e.phase == Phase::Instant {
                json.push_str(",\"s\":\"t\"");
            }
            let _ = write!(
                json,
                ",\"args\":{{\"span\":{},\"a\":{},\"b\":{},\"thread\":\"{}\"",
                e.span, e.a, e.b, tname
            );
            if e.kind.a_is_label() {
                if let Some(name) = label_name(e.a) {
                    let _ = write!(json, ",\"label\":\"{}\"", esc(&name));
                }
            }
            json.push_str("}}");
            records.push(Record { start_ns, json });
        }
    }
    records.sort_by_key(|r| r.start_ns);
    let mut out = String::with_capacity(records.len() * 128 + 16);
    out.push_str("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.json);
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Snapshot every ring and write the Chrome trace to `path`. Returns the
/// number of records written.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let snap = crate::ring::snapshot();
    let n = snap.iter().map(|t| t.events.len()).sum();
    std::fs::write(path, chrome_trace_json(&snap))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EvKind, Event};

    fn ev(ts: u64, kind: EvKind, phase: Phase, span: u64, a: u64, b: u64) -> Event {
        Event {
            ts,
            kind,
            phase,
            span,
            a,
            b,
        }
    }

    #[test]
    fn export_is_valid_json_and_sorted() {
        let snap = vec![
            ThreadEvents {
                tid: 1,
                name: "main \"quoted\"".into(),
                events: vec![
                    ev(100, EvKind::Solve, Phase::Begin, 1, 0, 0),
                    ev(900, EvKind::Solve, Phase::End, 1, 0, 0),
                ],
            },
            ThreadEvents {
                tid: 2,
                name: "worker".into(),
                events: vec![
                    ev(500, EvKind::Steal, Phase::Instant, 3, 4, 5),
                    // Complete: ts is the end, start = 700 - 300 = 400.
                    ev(700, EvKind::QueueWait, Phase::Complete, 9, 300, 0),
                ],
            },
        ];
        let json = chrome_trace_json(&snap);
        crate::summary::validate_json(&json).expect("valid JSON");
        let recs = crate::summary::parse_trace(&json).expect("parseable");
        assert_eq!(recs.len(), 4);
        let ts: Vec<f64> = recs.iter().map(|r| r.ts_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted: {ts:?}");
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn empty_snapshot_is_an_empty_array() {
        let json = chrome_trace_json(&[]);
        crate::summary::validate_json(&json).expect("valid JSON");
        assert_eq!(json.trim(), "[\n]");
    }
}
