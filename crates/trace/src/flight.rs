//! The flight recorder: postmortem dumps of the last events per thread.
//!
//! On a worker panic, a `SolveError::Panicked`, or a chaos-injected
//! fault, [`record`] snapshots the tail of every thread's ring into a
//! structured text dump — thread identity, span ids, resolved labels —
//! and retains it for retrieval by tests/operators. The first few dumps
//! also go to stderr so an unattended server leaves evidence behind.

use crate::event::Phase;
use crate::label::label_name;
use crate::ring::{enabled, snapshot_last};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Events retained per thread in a dump: enough to see the failing
/// request's whole lifecycle without drowning the postmortem.
pub const FLIGHT_EVENTS_PER_THREAD: usize = 64;

/// Retained dumps cap: a panic storm keeps the earliest dumps (the ones
/// closest to the root cause) and drops the rest.
const MAX_DUMPS: usize = 16;

/// Dumps echoed to stderr before going quiet.
const MAX_STDERR_DUMPS: usize = 4;

static DUMPS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static STDERR_BUDGET: AtomicUsize = AtomicUsize::new(MAX_STDERR_DUMPS);

/// Snapshot the last [`FLIGHT_EVENTS_PER_THREAD`] events of every thread
/// into a structured dump tagged with `reason`. Returns `None` (and does
/// nothing) while tracing is disabled — the flight recorder only has
/// evidence to offer when the rings are live.
pub fn record(reason: &str) -> Option<String> {
    if !enabled() {
        return None;
    }
    let snap = snapshot_last(FLIGHT_EVENTS_PER_THREAD);
    let mut out = String::new();
    let _ = writeln!(out, "=== ps-trace flight recorder: {reason} ===");
    for t in &snap {
        if t.events.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "-- thread {} \"{}\" (last {} events) --",
            t.tid,
            t.name,
            t.events.len()
        );
        for e in &t.events {
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
                Phase::Complete => "X",
            };
            let _ = write!(
                out,
                "  +{:>12} {} {} span={}",
                crate::export::us(e.ts),
                e.kind.name(),
                ph,
                e.span
            );
            if e.phase == Phase::Complete {
                let _ = write!(out, " dur={} b={}", crate::export::us(e.a), e.b);
            } else {
                let _ = write!(out, " a={} b={}", e.a, e.b);
            }
            if e.kind.a_is_label() {
                if let Some(name) = label_name(e.a) {
                    let _ = write!(out, " [{name}]");
                }
            }
            out.push('\n');
        }
    }
    {
        let mut dumps = DUMPS.lock().expect("flight dumps poisoned");
        if dumps.len() < MAX_DUMPS {
            dumps.push(out.clone());
        }
    }
    if STDERR_BUDGET
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
    {
        eprintln!("{out}");
    }
    Some(out)
}

/// Drain the retained dumps (oldest first).
pub fn take_dumps() -> Vec<String> {
    std::mem::take(&mut *DUMPS.lock().expect("flight dumps poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EvKind, Phase};
    use crate::ring::{disable, emit, enable};

    #[test]
    fn record_captures_labeled_tail() {
        enable();
        let lab = crate::label::label("eq:y");
        emit(EvKind::Solve, Phase::Begin, 77, lab, 0);
        let dump = record("test reason").expect("enabled");
        disable();
        assert!(dump.contains("test reason"));
        assert!(dump.contains("span=77"));
        assert!(dump.contains("[eq:y]"));
        assert!(dump.contains("thread"));
        let drained = take_dumps();
        assert!(drained.iter().any(|d| d.contains("test reason")));
    }

    #[test]
    fn disabled_recorder_stays_silent() {
        // Tracing off → no dump (other tests may race the global flag;
        // this only asserts the disabled contract when it holds).
        if !crate::ring::enabled() {
            assert!(record("noop").is_none());
        }
    }
}
