//! Lock-free log₂ duration histograms with geometric-midpoint quantiles.
//!
//! Bucket `i` counts samples whose nanosecond value has
//! `floor(log2(ns)) == i` (bucket 0 also takes sub-nanosecond samples).
//! Recording is three relaxed `fetch_add`s — no locks, safe from any
//! thread. Quantiles interpolate *geometrically* within the enclosing
//! bucket instead of reporting its edge: a rank falling a fraction `f`
//! of the way through bucket `i` reports `2^(i+f)`, which is unbiased on
//! a log scale (the old bucket-upper-bound reporting overstated p99 by up
//! to 2×). The top bucket (`i = 63`) cannot interpolate — any sample
//! ≥ 2⁶³ ns saturates and the quantile reports exactly 2⁶³ ns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets. 2⁶³ ns ≈ 292 years, so the top bucket
/// is unreachable for real latencies and exists only as the documented
/// saturation point.
pub const BUCKETS: usize = 64;

/// A lock-free log₂ histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> u64 {
        let total = self.count();
        if total == 0 {
            0
        } else {
            self.sum_ns.load(Ordering::Relaxed) / total
        }
    }

    /// The latency below which a fraction `q` (0..=1) of samples fall,
    /// geometric-midpoint interpolated (see module docs). Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.snapshot().quantile_ns(q)
    }

    /// Freeze the counts for consistent multi-quantile reads.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: the same quantile math over captured counts, so a
/// p50/p99/mean triple read together is self-consistent.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    pub counts: [u64; BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_ns / self.count
        }
    }

    /// Geometric-midpoint interpolated quantile (see module docs).
    ///
    /// The rank's position within its bucket maps to an exponent fraction:
    /// the `k`-th of `c` samples in bucket `i` (0-based, counted at its
    /// midpoint `k + 0.5`) reports `2^(i + (k + 0.5)/c)`, clamped to the
    /// bucket `[2^i, 2^(i+1))`. Bucket 63 saturates to exactly `2^63`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count;
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i >= 63 {
                    // Top-bucket saturation: no upper edge to interpolate
                    // toward; report the bucket's lower bound exactly.
                    return 1u64 << 63;
                }
                let k = (rank - seen - 1) as f64; // 0-based index in bucket
                let f = (k + 0.5) / c as f64; // midpoint fraction in (0,1)
                let lo = (1u64 << i) as f64;
                let v = lo * f.exp2();
                let hi = (1u64 << (i + 1)) - 1;
                return (v as u64).clamp(1u64 << i, hi);
            }
            seen += c;
        }
        1u64 << 63
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_midpoint_interpolation_within_a_bucket() {
        // 1000 samples all in bucket 10 ([1024, 2048)).
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_nanos(1500));
        }
        // p50 rank sits halfway through the bucket: 2^(10 + ~0.5) ≈ 1448,
        // not the old bucket-edge 2047.
        let p50 = h.quantile_ns(0.5);
        assert!((1400..=1500).contains(&p50), "p50 = {p50}");
        // p01 hugs the lower edge, p99 approaches (but stays inside) the
        // upper edge.
        let p01 = h.quantile_ns(0.01);
        let p99 = h.quantile_ns(0.99);
        assert!((1024..1100).contains(&p01), "p01 = {p01}");
        assert!((1900..2048).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_never_reports_a_bucket_edge_overshoot() {
        // The motivating defect: a uniform population at ~1 µs used to
        // report p99 = 2047 ns (the bucket upper bound, ~2× the truth).
        let h = Histogram::new();
        for _ in 0..10_000 {
            h.record(Duration::from_nanos(1100));
        }
        let p99 = h.quantile_ns(0.99);
        assert!(p99 < 2048, "p99 must stay inside the bucket, got {p99}");
        assert!(
            (1024..2048).contains(&p99),
            "p99 within the enclosing bucket"
        );
    }

    #[test]
    fn top_bucket_saturates_to_2_pow_63() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(1u64 << 63);
        assert_eq!(h.quantile_ns(0.5), 1u64 << 63);
        assert_eq!(h.quantile_ns(1.0), 1u64 << 63);
    }

    #[test]
    fn empty_and_zero_behave() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0);
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_ns(0.5), 1, "zero lands in bucket 0, floor 1");
    }

    #[test]
    fn mixed_population_orders_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        // 1000 ns sits in bucket 9 ([512, 1024)); 1 ms in bucket 19.
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!((512..1024).contains(&p50), "p50 = {p50}");
        assert!((524_288..1_048_576).contains(&p99), "p99 = {p99}");
        assert!(h.mean_ns() > p50 / 2);
    }
}
