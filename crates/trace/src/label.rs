//! A tiny global intern table mapping strings to `u64` payload ids.
//!
//! Event payloads are fixed 64-bit words; anything human-readable (a
//! program's equation targets, a fault-point name) is interned *once* on a
//! cold path (program compile, fault wiring) and carried by id. The
//! exporter, flight recorder, and CLI resolve ids back to names. Id 0 is
//! reserved for "no label".

use std::collections::HashMap;
use std::sync::Mutex;

struct Table {
    by_name: HashMap<String, u64>,
    names: Vec<String>,
}

static TABLE: Mutex<Option<Table>> = Mutex::new(None);

/// Intern `name`, returning its stable id (≥ 1). Repeated calls with the
/// same string return the same id. Lock-guarded — call from cold paths
/// only (compiles, registrations), never per-event.
pub fn label(name: &str) -> u64 {
    let mut guard = TABLE.lock().expect("label table poisoned");
    let table = guard.get_or_insert_with(|| Table {
        by_name: HashMap::new(),
        names: Vec::new(),
    });
    if let Some(&id) = table.by_name.get(name) {
        return id;
    }
    table.names.push(name.to_string());
    let id = table.names.len() as u64;
    table.by_name.insert(name.to_string(), id);
    id
}

/// [`label`] when tracing is enabled, otherwise 0 — for call sites that
/// only want to pay the intern lock while events are actually recorded
/// (e.g. fault-injection firings).
pub fn label_if_enabled(name: &str) -> u64 {
    if crate::ring::enabled() {
        label(name)
    } else {
        0
    }
}

/// Resolve an id minted by [`label`]; `None` for 0 or unknown ids.
pub fn label_name(id: u64) -> Option<String> {
    if id == 0 {
        return None;
    }
    let guard = TABLE.lock().expect("label table poisoned");
    guard
        .as_ref()
        .and_then(|t| t.names.get(id as usize - 1).cloned())
}

#[cfg(test)]
mod tests {
    #[test]
    fn intern_is_stable_and_resolvable() {
        let a = super::label("jacobi");
        let b = super::label("chain");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(super::label("jacobi"), a);
        assert_eq!(super::label_name(a).as_deref(), Some("jacobi"));
        assert_eq!(super::label_name(0), None);
        assert_eq!(super::label_name(u64::MAX), None);
    }
}
