//! ps-trace — always-on, low-overhead tracing for the ps stack.
//!
//! A process-wide tracing, profiling, and flight-recorder layer built for
//! the serving pipeline (executor → runtime → service → TCP front-end):
//!
//! * **Per-thread lock-free rings** ([`ring`]): fixed-size timestamped
//!   events (monotonic clock, thread id, span id, kind + two payload
//!   words). Emission is wait-free on the owner thread; the **disabled
//!   path is a single relaxed load** with zero allocation, so
//!   instrumentation stays in release builds.
//! * **Per-stage log₂ histograms** ([`hist`], [`stage`]): lock-free
//!   duration aggregation with geometric-midpoint quantiles (queue wait,
//!   compile, specialize, solve, reply), surfaced through `ServiceStats`
//!   and the ps-serve wire `stats` reply.
//! * **Chrome `trace_event` export** ([`export`]): `ps-serve --trace-out
//!   FILE` writes a trace openable in `chrome://tracing` / Perfetto.
//! * **Flight recorder** ([`flight`]): on a panic or injected fault, the
//!   last events of every thread become a structured postmortem dump.
//! * **Trace summarization** ([`summary`]): the `ps-trace` CLI's parser
//!   and analyzer (per-stage p50/p99, steal/region overlap, top spans).
//!
//! Typical instrumentation site:
//!
//! ```
//! use ps_trace::{EvKind, Phase};
//! // Disabled: one relaxed load, nothing else.
//! ps_trace::emit(EvKind::Steal, Phase::Instant, 0, 42, 7);
//! // Spans pair Begin/End automatically.
//! let _g = ps_trace::span(EvKind::Solve, 0, 0);
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod label;
pub mod ring;
pub mod stage;
pub mod summary;

pub use event::{EvKind, Event, Phase};
pub use export::{chrome_trace_json, write_chrome_trace};
pub use hist::{Histogram, HistogramSnapshot};
pub use label::{label, label_if_enabled, label_name};
pub use ring::{
    current_thread_events, disable, emit, enable, enabled, new_span, now_ns, snapshot,
    snapshot_last, span, span_with, SpanGuard, ThreadEvents, RING_CAP,
};
pub use stage::{Stage, StageSet, StageSnapshot};
pub use summary::{parse_trace, summarize, validate_json, TraceRecord, TraceSummary};
