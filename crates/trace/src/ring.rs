//! Per-thread lock-free event rings and the global enable gate.
//!
//! Each thread that emits while tracing is enabled lazily allocates one
//! fixed-capacity ring of atomic slots and registers it in a global list.
//! Only the owning thread ever *writes* its ring (plain relaxed stores, a
//! release head bump to publish), so emission is wait-free and
//! allocation-free after the first event. Snapshots (exporter, flight
//! recorder) read any ring from any thread; the only slot that can race a
//! snapshot is the one currently being overwritten, and a torn read there
//! decodes to an invalid kind and is dropped.
//!
//! The **disabled path is a single relaxed load**: [`emit`] checks
//! [`enabled`] and returns before touching the thread-local, the clock, or
//! any allocation. `tests/trace.rs` pins this with a counting
//! `GlobalAlloc`.

use crate::event::{EvKind, Event, Phase};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread. At ~40 bytes/event this is ~160 KiB per
/// emitting thread — big enough to hold several thousand requests' worth
/// of lifecycle events, small enough to snapshot on a panic.
pub const RING_CAP: usize = 4096;

/// Number of atomic words per slot: ts, kind|phase, span, a, b.
const WORDS: usize = 5;

struct Slot {
    words: [AtomicU64; WORDS],
}

/// One thread's event ring. `head` counts events ever pushed; slot
/// `head % RING_CAP` is the next write target.
pub struct Ring {
    tid: u64,
    name: String,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, name: String) -> Ring {
        let slots = (0..RING_CAP)
            .map(|_| Slot {
                words: [const { AtomicU64::new(0) }; WORDS],
            })
            .collect();
        Ring {
            tid,
            name,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Owner-thread push. Field stores are relaxed; the head bump is a
    /// release so a snapshot that acquires `head` sees complete slots for
    /// every index below it.
    fn push(&self, ts: u64, kind: EvKind, phase: Phase, span: u64, a: u64, b: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let s = &self.slots[(h as usize) % RING_CAP];
        s.words[0].store(ts, Ordering::Relaxed);
        s.words[1].store((kind as u64) | ((phase as u64) << 8), Ordering::Relaxed);
        s.words[2].store(span, Ordering::Relaxed);
        s.words[3].store(a, Ordering::Relaxed);
        s.words[4].store(b, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Oldest→newest decode of the last `max` retained events. Slots that
    /// decode to an invalid kind/phase (possible only for the slot being
    /// concurrently overwritten) are skipped.
    fn read_last(&self, max: usize) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        let n = (h as usize).min(RING_CAP).min(max);
        let mut out = Vec::with_capacity(n);
        for i in (h - n as u64)..h {
            let s = &self.slots[(i as usize) % RING_CAP];
            let ts = s.words[0].load(Ordering::Relaxed);
            let kp = s.words[1].load(Ordering::Relaxed);
            let (kind, phase) = (
                EvKind::from_u8((kp & 0xff) as u8),
                Phase::from_u8(((kp >> 8) & 0xff) as u8),
            );
            if let (Some(kind), Some(phase)) = (kind, phase) {
                out.push(Event {
                    ts,
                    kind,
                    phase,
                    span: s.words[2].load(Ordering::Relaxed),
                    a: s.words[3].load(Ordering::Relaxed),
                    b: s.words[4].load(Ordering::Relaxed),
                });
            }
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// Whether tracing is live. One relaxed load — this is the *entire*
/// disabled-path cost of every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on process-wide (idempotent). Pins the trace epoch on
/// first call so timestamps are comparable across threads.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Rings stay registered (and readable) but no new
/// events are recorded.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the trace epoch (pinned on first use).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Allocate a fresh span id (process-unique, never 0).
#[inline]
pub fn new_span() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

fn current_ring(cell: &OnceCell<Arc<Ring>>) -> &Arc<Ring> {
    cell.get_or_init(|| {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        let ring = Arc::new(Ring::new(tid, name));
        REGISTRY
            .lock()
            .expect("trace registry poisoned")
            .push(Arc::clone(&ring));
        ring
    })
}

/// Record one event on the current thread's ring. No-op (one relaxed
/// load) while tracing is disabled.
#[inline]
pub fn emit(kind: EvKind, phase: Phase, span: u64, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    emit_enabled(kind, phase, span, a, b);
}

#[inline(never)]
fn emit_enabled(kind: EvKind, phase: Phase, span: u64, a: u64, b: u64) {
    let ts = now_ns();
    RING.with(|cell| current_ring(cell).push(ts, kind, phase, span, a, b));
}

/// RAII span: emits `Begin` on construction (when enabled) and the
/// matching `End` on drop. A guard built while tracing was disabled stays
/// inert even if tracing is enabled before it drops, so `Begin`/`End`
/// always pair.
pub struct SpanGuard {
    kind: EvKind,
    span: u64,
    active: bool,
}

impl SpanGuard {
    pub fn span(&self) -> u64 {
        self.span
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            emit(self.kind, Phase::End, self.span, 0, 0);
        }
    }
}

/// Open a span of `kind` with payloads `a`/`b` under a fresh span id.
#[inline]
pub fn span(kind: EvKind, a: u64, b: u64) -> SpanGuard {
    span_with(kind, new_span(), a, b)
}

/// Open a span under a caller-chosen span id (e.g. a request id minted at
/// submit time, or a region epoch).
#[inline]
pub fn span_with(kind: EvKind, span: u64, a: u64, b: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            kind,
            span: 0,
            active: false,
        };
    }
    emit(kind, Phase::Begin, span, a, b);
    SpanGuard {
        kind,
        span,
        active: true,
    }
}

/// One thread's snapshot: identity plus decoded events, oldest first.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    pub tid: u64,
    pub name: String,
    pub events: Vec<Event>,
}

/// Snapshot the last `max` events of every registered ring. Safe to call
/// from any thread at any time (including while emitters are live — see
/// the module docs for the torn-slot caveat).
pub fn snapshot_last(max: usize) -> Vec<ThreadEvents> {
    let rings: Vec<Arc<Ring>> = REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .iter()
        .cloned()
        .collect();
    rings
        .iter()
        .map(|r| ThreadEvents {
            tid: r.tid,
            name: r.name.clone(),
            events: r.read_last(max),
        })
        .collect()
}

/// Snapshot every retained event of every registered ring.
pub fn snapshot() -> Vec<ThreadEvents> {
    snapshot_last(RING_CAP)
}

/// The calling thread's own retained events (oldest first). Handy for
/// deterministic tests that must not observe other threads' rings.
pub fn current_thread_events() -> Vec<Event> {
    RING.with(|cell| match cell.get() {
        Some(r) => r.read_last(RING_CAP),
        None => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_pairs_begin_end() {
        enable();
        let before = current_thread_events().len();
        {
            let _g = span(EvKind::Solve, 7, 0);
            emit(EvKind::Steal, Phase::Instant, 1, 2, 3);
        }
        let evs = current_thread_events();
        let new = &evs[before.min(evs.len())..];
        assert!(new.len() >= 3);
        let solve: Vec<_> = new.iter().filter(|e| e.kind == EvKind::Solve).collect();
        assert_eq!(solve.len(), 2);
        assert_eq!(solve[0].phase, Phase::Begin);
        assert_eq!(solve[1].phase, Phase::End);
        assert_eq!(solve[0].span, solve[1].span);
        disable();
    }
}
