//! Per-stage duration histograms over the request lifecycle.
//!
//! A [`StageSet`] bundles one lock-free [`Histogram`] per pipeline stage
//! (queue wait, compile, specialize, solve, reply). The service owns one
//! per instance and threads it down to the registry (compile) and runtime
//! artifact (specialize); the TCP front-end records reply time into the
//! same set, so one snapshot covers the whole lifecycle.

use crate::hist::{Histogram, HistogramSnapshot};
use std::time::Duration;

/// A request-lifecycle stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Submit → dequeue by a worker.
    QueueWait = 0,
    /// Source → `CompiledProgram` on a registry miss.
    Compile = 1,
    /// Parameter-layout specialization build (spec-cache miss).
    Specialize = 2,
    /// Worker solve (session run, including executor time).
    Solve = 3,
    /// Reply serialization + socket write in the front-end.
    Reply = 4,
}

impl Stage {
    pub const COUNT: usize = 5;

    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::Compile,
        Stage::Specialize,
        Stage::Solve,
        Stage::Reply,
    ];

    /// Stable short name (used in the wire `stats` reply and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Compile => "compile",
            Stage::Specialize => "specialize",
            Stage::Solve => "solve",
            Stage::Reply => "reply",
        }
    }
}

/// One histogram per [`Stage`], recorded lock-free from any thread.
#[derive(Debug, Default)]
pub struct StageSet {
    hists: [Histogram; Stage::COUNT],
}

impl StageSet {
    pub const fn new() -> StageSet {
        StageSet {
            hists: [const { Histogram::new() }; Stage::COUNT],
        }
    }

    #[inline]
    pub fn record(&self, stage: Stage, d: Duration) {
        self.hists[stage as usize].record(d);
    }

    #[inline]
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        self.hists[stage as usize].record_ns(ns);
    }

    pub fn get(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            stages: Stage::ALL.map(|s| self.hists[s as usize].snapshot()),
        }
    }
}

/// Frozen per-stage histograms, indexable by [`Stage`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSnapshot {
    stages: [HistogramSnapshot; Stage::COUNT],
}

impl StageSnapshot {
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// `name:count:p50_us:p99_us` per stage, comma-joined — the compact
    /// wire form carried by the ps-serve `stats` reply.
    pub fn wire_form(&self) -> String {
        Stage::ALL
            .iter()
            .map(|&s| {
                let h = self.get(s);
                format!(
                    "{}:{}:{}:{}",
                    s.name(),
                    h.count,
                    h.quantile_ns(0.5) / 1_000,
                    h.quantile_ns(0.99) / 1_000
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_independently() {
        let set = StageSet::new();
        set.record(Stage::Solve, Duration::from_micros(5));
        set.record(Stage::Solve, Duration::from_micros(5));
        set.record(Stage::QueueWait, Duration::from_micros(1));
        let snap = set.snapshot();
        assert_eq!(snap.get(Stage::Solve).count, 2);
        assert_eq!(snap.get(Stage::QueueWait).count, 1);
        assert_eq!(snap.get(Stage::Compile).count, 0);
        let wire = snap.wire_form();
        assert!(wire.contains("solve:2:"), "wire = {wire}");
        assert!(wire.starts_with("queue_wait:1:"), "wire = {wire}");
    }
}
