//! Trace-file parsing, validation, and summarization.
//!
//! The `ps-trace` CLI (and `tests/trace.rs`) consume the exporter's
//! Chrome trace files through this module: a small recursive-descent JSON
//! parser (the workspace is zero-dep by design), a strict validator, and
//! a summarizer producing per-stage latency quantiles, a steal/region
//! overlap picture, and a top-spans-by-time table.

use std::collections::HashMap;
use std::fmt;

// ---- minimal JSON ----

/// A parsed JSON value (numbers as f64 — plenty for microsecond stamps).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Strict syntactic validation: the whole text must be one JSON document.
pub fn validate_json(text: &str) -> Result<(), String> {
    parse_json(text).map(|_| ())
}

// ---- trace records ----

/// One Chrome trace record, as written by [`crate::export`].
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub name: String,
    pub ph: char,
    pub ts_us: f64,
    pub dur_us: f64,
    pub tid: u64,
    pub span: u64,
    pub a: u64,
    pub b: u64,
    pub label: Option<String>,
}

/// Parse a trace file into records, validating structure along the way.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    let doc = parse_json(text)?;
    let Json::Arr(items) = doc else {
        return Err("trace file is not a JSON array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing name"))?
            .to_string();
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .ok_or_else(|| format!("record {i}: missing ph"))?;
        let ts_us = item
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("record {i}: missing ts"))?;
        let dur_us = item.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        let tid = item.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let args = item.get("args");
        let arg = |k: &str| {
            args.and_then(|a| a.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64
        };
        let label = args
            .and_then(|a| a.get("label"))
            .and_then(Json::as_str)
            .map(str::to_string);
        out.push(TraceRecord {
            name,
            ph,
            ts_us,
            dur_us,
            tid,
            span: arg("span"),
            a: arg("a"),
            b: arg("b"),
            label,
        });
    }
    Ok(out)
}

// ---- summarization ----

#[derive(Clone, Debug, Default)]
pub struct DurStat {
    pub name: String,
    pub count: usize,
    pub p50_us: f64,
    pub p99_us: f64,
    pub total_us: f64,
}

/// Everything the `ps-trace` CLI prints about a trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    pub records: usize,
    pub threads: usize,
    /// Records whose timestamps were non-monotone (0 for a valid file).
    pub ts_regressions: usize,
    /// Per-name durations from `X` records and matched `B`/`E` pairs.
    pub durations: Vec<DurStat>,
    /// Instant-event counts per name.
    pub counts: Vec<(String, usize)>,
    /// Peak number of executor regions (`publish` spans) live at once.
    pub max_region_overlap: usize,
    pub steals: usize,
    /// Labelled spans (solve/region) by total time, descending.
    pub top_spans: Vec<(String, f64, usize)>,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Build the summary. `B`/`E` records pair up per `(tid, name)` as a
/// stack (the exporter preserves per-thread order, so nesting is sound).
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut s = TraceSummary {
        records: records.len(),
        ..Default::default()
    };
    let mut threads: Vec<u64> = records.iter().map(|r| r.tid).collect();
    threads.sort_unstable();
    threads.dedup();
    s.threads = threads.len();
    s.ts_regressions = records
        .windows(2)
        .filter(|w| w[1].ts_us < w[0].ts_us)
        .count();

    let mut durs: HashMap<String, Vec<f64>> = HashMap::new();
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut open: HashMap<(u64, String), Vec<(f64, Option<String>)>> = HashMap::new();
    let mut labeled: HashMap<String, (f64, usize)> = HashMap::new();
    let mut region_edges: Vec<(f64, i32)> = Vec::new();

    for r in records {
        match r.ph {
            'X' => {
                durs.entry(r.name.clone()).or_default().push(r.dur_us);
            }
            'B' => {
                open.entry((r.tid, r.name.clone()))
                    .or_default()
                    .push((r.ts_us, r.label.clone()));
            }
            'E' => {
                if let Some((start, label)) =
                    open.get_mut(&(r.tid, r.name.clone())).and_then(Vec::pop)
                {
                    let d = (r.ts_us - start).max(0.0);
                    durs.entry(r.name.clone()).or_default().push(d);
                    if r.name == "publish" {
                        region_edges.push((start, 1));
                        region_edges.push((r.ts_us, -1));
                    }
                    if let Some(label) = label {
                        let e = labeled.entry(label).or_insert((0.0, 0));
                        e.0 += d;
                        e.1 += 1;
                    }
                }
            }
            _ => {
                *counts.entry(r.name.clone()).or_default() += 1;
                if r.name == "steal" {
                    s.steals += 1;
                }
            }
        }
    }

    // Sweep the publish edges for the peak region overlap (+1 before -1
    // at equal timestamps counts a back-to-back handoff as overlapping —
    // the conservative reading).
    region_edges.sort_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)));
    let mut live = 0i32;
    for (_, d) in &region_edges {
        live += d;
        s.max_region_overlap = s.max_region_overlap.max(live.max(0) as usize);
    }

    let mut names: Vec<String> = durs.keys().cloned().collect();
    names.sort();
    for name in names {
        let mut v = durs.remove(&name).unwrap();
        v.sort_by(f64::total_cmp);
        s.durations.push(DurStat {
            count: v.len(),
            p50_us: quantile(&v, 0.5),
            p99_us: quantile(&v, 0.99),
            total_us: v.iter().sum(),
            name,
        });
    }
    s.counts = counts.into_iter().collect();
    s.counts.sort();
    s.top_spans = labeled
        .into_iter()
        .map(|(name, (total, count))| (name, total, count))
        .collect();
    s.top_spans
        .sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    s.top_spans.truncate(10);
    s
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: events={} threads={} ts_regressions={}",
            self.records, self.threads, self.ts_regressions
        )?;
        writeln!(f, "stages (us):")?;
        for d in &self.durations {
            writeln!(
                f,
                "  {:<12} n={:<6} p50={:<10.3} p99={:<10.3} total={:.3}",
                d.name, d.count, d.p50_us, d.p99_us, d.total_us
            )?;
        }
        if !self.counts.is_empty() {
            writeln!(f, "events:")?;
            for (name, n) in &self.counts {
                writeln!(f, "  {name:<12} n={n}")?;
            }
        }
        writeln!(
            f,
            "executor: steals={} max_region_overlap={}",
            self.steals, self.max_region_overlap
        )?;
        if !self.top_spans.is_empty() {
            writeln!(f, "top spans by time:")?;
            for (name, total, count) in &self.top_spans {
                writeln!(f, "  {name:<24} total_us={total:<12.3} n={count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_accepts_and_rejects() {
        assert!(validate_json(r#"[{"a":1.5,"b":[true,null,"x\n"]}]"#).is_ok());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("[1,2] trailing").is_err());
        assert!(validate_json(r#"{"unterminated":"#).is_err());
        assert!(validate_json("[1e3, -2.5E-2]").is_ok());
    }

    #[test]
    fn summarize_pairs_spans_and_counts_overlap() {
        let mk = |name: &str, ph: char, ts: f64, tid: u64, label: Option<&str>| TraceRecord {
            name: name.into(),
            ph,
            ts_us: ts,
            dur_us: 0.0,
            tid,
            span: 0,
            a: 0,
            b: 0,
            label: label.map(Into::into),
        };
        let recs = vec![
            mk("publish", 'B', 0.0, 1, None),
            mk("publish", 'B', 1.0, 2, None),
            mk("steal", 'i', 1.5, 2, None),
            mk("publish", 'E', 2.0, 1, None),
            mk("publish", 'E', 3.0, 2, None),
            mk("solve", 'B', 0.0, 1, Some("eq:y")),
            mk("solve", 'E', 10.0, 1, None),
        ];
        let s = summarize(&recs);
        assert_eq!(s.max_region_overlap, 2);
        assert_eq!(s.steals, 1);
        let publish = s.durations.iter().find(|d| d.name == "publish").unwrap();
        assert_eq!(publish.count, 2);
        assert_eq!(s.top_spans[0].0, "eq:y");
        assert!((s.top_spans[0].1 - 10.0).abs() < 1e-9);
    }
}
