//! Deadlines, shedding, and a seeded retry loop against the embedded
//! solve service.
//!
//! ```sh
//! cargo run --example deadline_retry
//! ```
//!
//! One worker is kept busy with a long solve while a client submits the
//! same request under an impossibly short deadline — the service sheds it
//! (`SolveError::DeadlineExceeded`, counted in `deadline_expired`)
//! without ever executing it. The client then does what a real caller
//! should: retry under seeded jittered exponential backoff with a more
//! generous deadline until the answer arrives. `wait_timeout` shows the
//! non-blocking side of the same lifecycle.

use ps_core::{Inputs, Lcg, Service, ServiceOptions, SolveError, SolveRequest};
use std::time::Duration;

fn main() {
    let service = Service::new(ServiceOptions {
        workers: 1, // one worker => deadlines demonstrably queue-sensitive
        ..Default::default()
    });
    let key = service.register(ps_core::programs::RECURRENCE_1D).unwrap();
    let inputs = || Inputs::new().set_real("rate", 0.001).set_int("n", 4096);

    // Occupy the single worker so deadlined requests wait behind it.
    let occupy = service.submit(SolveRequest::new(
        key.clone(),
        Inputs::new().set_real("rate", 1e-7).set_int("n", 2_000_000),
    ));

    // An expired deadline is shed at dequeue: the request never executes.
    let shed = service
        .submit_with_deadline(SolveRequest::new(key.clone(), inputs()), Duration::ZERO)
        .wait();
    assert!(matches!(shed, Err(SolveError::DeadlineExceeded)));
    println!("impatient request shed: {}", shed.unwrap_err());

    // `wait_timeout` polls without blocking forever: while the occupying
    // solve runs, a 1 ms wait on a fresh request usually returns None
    // (on a fast box the answer may already be in — both are valid).
    let pending = service.submit(SolveRequest::new(key.clone(), inputs()));
    let mut early = pending.wait_timeout(Duration::from_millis(1));
    if early.is_none() {
        println!("wait_timeout: response not ready yet (worker still busy)");
    }

    // ...and the retry loop is the production pattern: each attempt gets
    // a real (but finite) deadline, and failures back off with seeded
    // jitter so a thundering herd of clients decorrelates.
    let mut rng = Lcg::new(0xD11E);
    let mut attempt = 0u32;
    let outcome = loop {
        let got = service
            .submit_with_deadline(
                SolveRequest::new(key.clone(), inputs()),
                Duration::from_millis(2 << attempt.min(8)),
            )
            .wait();
        match got {
            Err(SolveError::DeadlineExceeded) | Err(SolveError::Busy) if attempt < 10 => {
                attempt += 1;
                let base_us = 500u64 << attempt.min(6);
                let jitter = rng.int(-(base_us as i64) / 2, base_us as i64 / 2);
                std::thread::sleep(Duration::from_micros(
                    (base_us as i64 + jitter).max(100) as u64
                ));
            }
            other => break other,
        }
    };
    let out = outcome.expect("the retry loop eventually lands");
    println!(
        "retried to success after {attempt} backoffs: final = {}",
        out.scalar("final").as_real()
    );

    // The parked wait_timeout request and the occupier both complete too.
    let parked = early
        .take()
        .or_else(|| pending.wait_timeout(Duration::from_secs(60)))
        .expect("ready well inside a minute")
        .expect("undeadlined request solves");
    assert_eq!(
        parked.scalar("final").as_real(),
        out.scalar("final").as_real()
    );
    occupy.wait().expect("long solve completes");

    let stats = service.stats();
    println!(
        "requests {} responses {} deadline_expired {} (panics {})",
        stats.requests, stats.responses, stats.deadline_expired, stats.panics
    );
    assert!(stats.deadline_expired >= 1, "the shed request was counted");
    service.shutdown();
}
