//! Print the C the compiler generates — the paper's actual output format —
//! for both Relaxation variants and the transformed wavefront.
//!
//! ```sh
//! cargo run --example emit_c            # Figure-1 module
//! cargo run --example emit_c -- v2      # revised eq.3 + hyperplane
//! ```

use ps_core::{compile, emit_main, programs, CompileOptions, StorageMode};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "v1".to_string());
    match which.as_str() {
        "v1" => {
            let comp =
                compile(programs::RELAXATION_V1, CompileOptions::default()).expect("compiles");
            println!("/* ==== module (Jacobi; DOALL-parallel inner loops) ==== */");
            print!("{}", comp.c_code);
            println!("\n/* ==== standalone driver ==== */");
            print!("{}", emit_main(&comp.module, &[("M", 64), ("maxK", 100)]));
        }
        "v2" => {
            let comp = compile(
                programs::RELAXATION_V2,
                CompileOptions {
                    hyperplane: Some(StorageMode::Windowed),
                    ..Default::default()
                },
            )
            .expect("compiles");
            println!("/* ==== untransformed (Gauss-Seidel; fully iterative) ==== */");
            print!("{}", comp.c_code);
            let art = comp.transformed.as_ref().unwrap();
            println!("\n/* ==== hyperplane wavefront (window 3 + drain) ==== */");
            print!("{}", art.c_code);
        }
        other => {
            eprintln!("unknown variant `{other}`; use v1 or v2");
            std::process::exit(2);
        }
    }
}
