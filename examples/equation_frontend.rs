//! The paper's "ultimate goal": translate a TeX-style recurrence straight
//! into PS, compile it, and run it — no hand-written module at all.
//!
//! ```sh
//! cargo run --example equation_frontend
//! cargo run --example equation_frontend -- 'A^{k}_{i} = (A^{k-1}_{i-1} + A^{k-1}_{i+1}) / 2'
//! ```

use ps_core::{
    compile, execute, translate_equation, CompileOptions, Inputs, OwnedArray, RuntimeOptions,
    Sequential,
};

const DEFAULT: &str =
    "A^{k}_{i,j} = (A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j} + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}) / 4";

fn main() {
    let equation = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT.to_string());
    println!("equation:\n  {equation}\n");

    let ps_source = translate_equation(&equation, "Translated").expect("translates");
    println!("generated PS module:\n{ps_source}");

    let comp = compile(&ps_source, CompileOptions::default()).expect("compiles");
    println!("schedule: {}\n", comp.compact_flowchart());

    // Run it on a small grid/rod depending on rank.
    let target = comp.module.data_by_name("A").or_else(|| {
        // 1-D equations may use another letter; find the local array.
        comp.module
            .data
            .iter_enumerated()
            .find(|(_, d)| d.kind == ps_lang::hir::DataKind::Local && d.is_array())
            .map(|(id, _)| id)
    });
    let rank = target
        .map(|t| comp.module.data[t].dims().len())
        .unwrap_or(3)
        - 1;

    let m = 6i64;
    let side = (m + 2) as usize;
    let input_name = comp.module.data[comp.module.params[0]].name.to_string();
    let inputs = match rank {
        1 => {
            let data: Vec<f64> = (0..side).map(|i| i as f64).collect();
            Inputs::new()
                .set_int("M", m)
                .set_int("maxK", 5)
                .set_array(&input_name, OwnedArray::real(vec![(0, m + 1)], data))
        }
        2 => {
            let data: Vec<f64> = (0..side * side).map(|i| (i % 7) as f64).collect();
            Inputs::new().set_int("M", m).set_int("maxK", 5).set_array(
                &input_name,
                OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
            )
        }
        r => {
            eprintln!("demo driver supports 1-D and 2-D equations, got rank {r}");
            std::process::exit(2);
        }
    };
    let out = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).expect("runs");
    let (name, result) = out.arrays.iter().next().expect("one result array");
    let sum: f64 = result.as_real_slice().iter().sum();
    println!("executed: result `{name}` checksum = {sum:.6}");
}
