//! Heat diffusion on a rod: DOALL parallelism in action.
//!
//! Compiles the 1-D explicit heat scheme, runs it sequentially and on
//! thread pools of increasing size, and reports speedups — the "Perf A"
//! experiment shape at example scale.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use ps_core::{
    compile, execute, programs, CompileOptions, Executor, Inputs, OwnedArray, RuntimeOptions,
    Sequential, ThreadPool,
};
use std::time::Instant;

fn rod(m: i64) -> OwnedArray {
    // Hot in the middle, cold at the clamped boundary.
    let data: Vec<f64> = (0..(m + 2))
        .map(|i| {
            let x = i as f64 / (m + 1) as f64;
            100.0 * (-((x - 0.5) * 8.0).powi(2)).exp()
        })
        .collect();
    OwnedArray::real(vec![(0, m + 1)], data)
}

fn run_once(
    comp: &ps_core::Compilation,
    inputs: &Inputs,
    executor: &dyn Executor,
) -> (f64, std::time::Duration) {
    let t0 = Instant::now();
    let out = execute(comp, inputs, executor, RuntimeOptions::default()).expect("runs");
    let dt = t0.elapsed();
    let total: f64 = out.array("uT").as_real_slice().iter().sum();
    (total, dt)
}

fn main() {
    let comp = compile(programs::HEAT_1D, CompileOptions::default()).expect("compiles");
    println!("schedule: {}", comp.compact_flowchart());

    let m = 200_000i64;
    let steps = 60i64;
    let inputs = Inputs::new()
        .set_int("M", m)
        .set_int("maxK", steps)
        .set_real("alpha", 0.24)
        .set_array("u0", rod(m));

    println!("\nrod cells: {m}, time steps: {steps}");
    let (seq_total, seq_dt) = run_once(&comp, &inputs, &Sequential);
    println!("  sequential      : {seq_dt:>10.2?}  (checksum {seq_total:.6})");

    for threads in [2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let (total, dt) = run_once(&comp, &inputs, &pool);
        assert!(
            (total - seq_total).abs() < 1e-6,
            "parallel result must match"
        );
        println!(
            "  {threads} threads       : {dt:>10.2?}  (speedup {:.2}x)",
            seq_dt.as_secs_f64() / dt.as_secs_f64()
        );
    }

    println!("\nThe DOALL X loop inside DO K is what the pool parallelizes;");
    println!("the window-2 storage keeps only two rod-length planes live.");
    let u = comp.module.data_by_name("u").unwrap();
    println!(
        "u window on dim 0: {:?} (instead of {} planes)",
        comp.schedule.memory.window(u, 0),
        steps
    );
}
