//! Quickstart: compile the paper's Relaxation module, look at every
//! artifact the compiler produces, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ps_core::{
    compile, execute, programs, CompileOptions, Inputs, OwnedArray, Program, RuntimeOptions,
    Sequential,
};

fn main() {
    // 1. Compile the nonprocedural source. The `define` section is a set of
    //    unordered equations; the compiler derives the execution order.
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default())
        .expect("the Figure-1 module compiles");

    println!("=== PS source (Figure 1) ===\n{}", programs::RELAXATION_V1);

    // 2. The dependency graph (Figure 3).
    println!("=== Dependency graph (Figure 3) ===");
    println!("{}", ps_depgraph::stats::stats(&comp.depgraph));

    // 3. The component table (Figure 5).
    println!("\n=== Components (Figure 5) ===");
    print!(
        "{}",
        ps_scheduler::render::render_component_table(&comp.schedule)
    );

    // 4. The scheduled flowchart (Figure 6) with DO/DOALL annotations.
    println!("\n=== Flowchart (Figure 6) ===");
    print!(
        "{}",
        ps_scheduler::render::render_flowchart(&comp.module, &comp.schedule.flowchart)
    );

    // 5. Memory plan: dimension K of A is a window of 2 planes.
    println!("\n=== Virtual dimensions (Section 3.4) ===");
    print!(
        "{}",
        ps_scheduler::render::render_memory_plan(&comp.module, &comp.schedule)
    );

    // 6. Execute: relax a 8x8 grid with a hot spot for 20 sweeps.
    let m = 8i64;
    let side = (m + 2) as usize;
    let mut init = vec![0.0f64; side * side];
    init[(side / 2) * side + side / 2] = 100.0;
    let inputs = Inputs::new().set_int("M", m).set_int("maxK", 20).set_array(
        "InitialA",
        OwnedArray::real(vec![(0, m + 1), (0, m + 1)], init),
    );
    let out = execute(&comp, &inputs, &Sequential, RuntimeOptions::default())
        .expect("execution succeeds");

    println!("\n=== Result grid after 20 sweeps (centre rows) ===");
    let new_a = out.array("newA");
    for i in (side / 2 - 2)..(side / 2 + 2) {
        let row: Vec<String> = (0..side)
            .map(|j| format!("{:6.2}", new_a.get(&[i as i64, j as i64]).as_real()))
            .collect();
        println!("  {}", row.join(" "));
    }

    // 7. Compile once, run many: a `Program` lowers the tapes a single
    //    time; each `run` only binds parameters and executes against
    //    pooled storage — the shape a service answering many small
    //    solves needs. (`&Program` is Send + Sync, so worker threads can
    //    share one artifact.)
    let prog = Program::compile(&comp, RuntimeOptions::default());
    println!("\n=== Compile-once / run-many (grid sizes 4, 6, 8) ===");
    for m in [4i64, 6, 8] {
        let side = (m + 2) as usize;
        let mut init = vec![0.0f64; side * side];
        init[(side / 2) * side + side / 2] = 100.0;
        let out = prog
            .run(
                &Inputs::new().set_int("M", m).set_int("maxK", 10).set_array(
                    "InitialA",
                    OwnedArray::real(vec![(0, m + 1), (0, m + 1)], init),
                ),
                &Sequential,
            )
            .expect("pooled run succeeds");
        let total: f64 = out.array("newA").as_real_slice().iter().sum();
        println!("  M = {m}: interior mass after 10 sweeps = {total:.3}");
    }
    println!(
        "  ({} parameter layouts specialized, tapes lowered once)",
        prog.specialization_count()
    );

    // 8. The generated C is in `comp.c_code` (see the emit_c example).
    println!(
        "\nGenerated C: {} lines (run the emit_c example to see it).",
        comp.c_code.lines().count()
    );
}
