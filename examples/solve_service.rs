//! Embed the concurrent solve service: one `Service`, several programs,
//! many clients.
//!
//! ```sh
//! cargo run --example solve_service
//! ```
//!
//! Three built-in programs are registered once; twelve client threads then
//! fire mixed requests at the shared service. Requests that share a
//! program are micro-batched onto one pooled run-slot, the registry serves
//! every artifact from cache after its single compile, and one deliberately
//! poisoned request (a divide-by-zero panic) is isolated at the request
//! boundary while the workers keep serving.

use ps_core::{programs, Inputs, Service, ServiceOptions, SolveError, SolveRequest};

fn main() {
    let service = Service::new(ServiceOptions {
        workers: 4,
        batch_max: 8,
        ..Default::default()
    });

    // Compile once per program (warms the registry).
    let compound = service.register(programs::RECURRENCE_1D).unwrap();
    let table = service.register(programs::TABLE_2D).unwrap();
    let divider = service
        .register("Divider: module (p: int; q: int): [y: int]; define y = p div q; end Divider;")
        .unwrap();

    // Twelve concurrent clients, mixed programs and parameters.
    std::thread::scope(|scope| {
        for t in 0..12u32 {
            let service = &service;
            let (compound, table) = (compound.clone(), table.clone());
            scope.spawn(move || {
                for i in 0..8u32 {
                    let (key, inputs) = if (t + i) % 2 == 0 {
                        (
                            compound.clone(),
                            Inputs::new()
                                .set_real("rate", 0.01 * (1 + t) as f64)
                                .set_int("n", 16 + (i % 4) as i64),
                        )
                    } else {
                        (
                            table.clone(),
                            Inputs::new().set_int("n", 8 + (i % 3) as i64),
                        )
                    };
                    let out = service.submit(SolveRequest::new(key, inputs)).wait();
                    assert!(out.is_ok(), "healthy requests always solve");
                }
            });
        }
    });

    // A poisoned request: the panic is caught at the request boundary.
    match service.solve(&divider, Inputs::new().set_int("p", 1).set_int("q", 0)) {
        Err(SolveError::Panicked(msg)) => {
            println!("poisoned request isolated: {msg}");
        }
        other => panic!("expected an isolated panic, got {other:?}"),
    }
    // ...and the very next request on the same workers still solves.
    let err = service
        .solve(&divider, Inputs::new().set_int("p", 9))
        .err()
        .map(|e| e.to_string());
    assert!(
        err.unwrap().contains("missing input"),
        "runtime errors are typed too"
    );
    let y = service
        .solve(&divider, Inputs::new().set_int("p", 9).set_int("q", 3))
        .unwrap();
    assert_eq!(y.scalar("y").as_int(), 3);

    let stats = service.stats();
    println!(
        "served {} requests in {} batches (max batch {}) | compiles {} cache-hits {} | \
         p50 {:?} p99 {:?} | panics isolated: {}",
        stats.responses,
        stats.batches,
        stats.max_batch,
        stats.compiles,
        stats.cache_hits,
        stats.p50,
        stats.p99,
        stats.panics,
    );
    assert!(stats.cache_hits > stats.compiles, "warm registry");
}
