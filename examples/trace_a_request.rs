//! Trace one request end to end with ps-trace.
//!
//! ```sh
//! cargo run --example trace_a_request
//! ```
//!
//! Enables the tracing layer, serves a handful of requests through an
//! embedded [`Service`], then walks one request's span through the ring
//! snapshot: enqueue → dequeue (queue wait) → solve → response. Finally
//! it exports a Chrome `trace_event` file (open it in `chrome://tracing`
//! or Perfetto) and prints the same summary the `ps-trace` CLI would.

use ps_core::ps_trace::{self, EvKind, Stage};
use ps_core::{programs, Inputs, Service, ServiceOptions, SolveRequest};

fn main() {
    // 1. Flip the global switch. Before this line every instrumentation
    //    site in the stack was a single relaxed load; after it, events
    //    land in per-thread lock-free rings.
    ps_trace::enable();

    let service = Service::new(ServiceOptions {
        workers: 2,
        ..Default::default()
    });
    let key = service.register(programs::RECURRENCE_1D).unwrap();

    // A little traffic so the trace has texture...
    for i in 0..5 {
        let inputs = Inputs::new()
            .set_real("rate", 0.05)
            .set_int("n", 8 + i as i64);
        service.solve(&key, inputs).unwrap();
    }

    // ...and then THE request we follow. Every live request gets a span
    // id at submit; the handle carries it.
    let traced = service.submit(SolveRequest::new(
        key.clone(),
        Inputs::new().set_real("rate", 0.10).set_int("n", 16),
    ));
    let span = traced.trace_span();
    traced.wait().unwrap();
    println!("followed request got span id {span}");

    // 2. Walk the rings and pick out that span's lifecycle.
    let snapshot = ps_trace::snapshot();
    let mut lifecycle: Vec<String> = Vec::new();
    for thread in &snapshot {
        for e in &thread.events {
            if e.span == span {
                lifecycle.push(format!(
                    "  {:>10} ns  {:<10} {:?} on {}",
                    e.ts,
                    e.kind.name(),
                    e.phase,
                    thread.name
                ));
            }
        }
    }
    lifecycle.sort(); // ts is zero-padded enough for a demo sort
    println!("lifecycle of span {span} ({} events):", lifecycle.len());
    for line in &lifecycle {
        println!("{line}");
    }
    let kinds: Vec<EvKind> = snapshot
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.span == span)
        .map(|e| e.kind)
        .collect();
    assert!(kinds.contains(&EvKind::Enqueue), "submit was traced");
    assert!(kinds.contains(&EvKind::Dequeue), "worker pickup was traced");
    assert!(kinds.contains(&EvKind::Solve), "the solve span was traced");

    // 3. The per-stage histograms aggregate the same lifecycle across all
    //    requests — this is what `stats` serves over the wire.
    let stats = service.stats();
    let solve = stats.stages.get(Stage::Solve);
    let wait = stats.stages.get(Stage::QueueWait);
    println!(
        "stages: solve count={} p50={}ns p99={}ns | queue-wait count={} p50={}ns",
        solve.count,
        solve.quantile_ns(0.5),
        solve.quantile_ns(0.99),
        wait.count,
        wait.quantile_ns(0.5),
    );
    assert_eq!(solve.count, stats.responses as u64);

    // 4. Export a Chrome trace and summarize it exactly like the
    //    `ps-trace summarize` CLI does.
    let path = std::env::temp_dir().join("ps_trace_example.json");
    let path = path.to_string_lossy().into_owned();
    let n = ps_trace::write_chrome_trace(&path).expect("write trace");
    println!("wrote {n} events to {path} (open in chrome://tracing)");
    let text = std::fs::read_to_string(&path).unwrap();
    let records = ps_trace::parse_trace(&text).expect("the exporter emits valid traces");
    print!("{}", ps_trace::summarize(&records));
    service.shutdown();
}
