//! Section 4 end to end: a seemingly iterative Gauss–Seidel relaxation is
//! restructured into a parallel wavefront.
//!
//! Shows the Figure-7 (all iterative) schedule, the full hyperplane
//! derivation (π = (2,1,1), K' = 2K+I+J), the transformed Figure-6-shaped
//! schedule with its drain, and then *measures* the difference: sequential
//! Gauss–Seidel vs the parallel wavefront.
//!
//! ```sh
//! cargo run --release --example wavefront_transform
//! ```

use ps_core::{
    compile, execute, execute_transformed, programs, CompileOptions, Inputs, OwnedArray,
    RuntimeOptions, Sequential, StorageMode, ThreadPool,
};
use std::time::Instant;

fn main() {
    let comp = compile(
        programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Windowed),
            ..Default::default()
        },
    )
    .expect("compiles and transforms");

    println!("=== Untransformed schedule (Figure 7: every loop iterative) ===");
    print!(
        "{}",
        ps_scheduler::render::render_flowchart(&comp.module, &comp.schedule.flowchart)
    );

    println!("\n=== Hyperplane derivation (Section 4) ===");
    print!("{}", ps_core::report::section4(&comp));

    // Measure: big grid, both versions, sequential and parallel.
    let m = 400i64;
    let maxk = 60i64;
    let side = (m + 2) as usize;
    let init: Vec<f64> = (0..side * side)
        .map(|i| ((i % 101) as f64 - 50.0) * 0.1)
        .collect();
    let inputs = Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            OwnedArray::real(vec![(0, m + 1), (0, m + 1)], init),
        );

    println!("\n=== Measurements (grid {m}x{m}, {maxk} sweeps) ===");
    let t0 = Instant::now();
    let base = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let t_seq = t0.elapsed();
    println!("  Gauss-Seidel, sequential DO K(DO I(DO J)) : {t_seq:>10.2?}");

    let t0 = Instant::now();
    let wave_seq =
        execute_transformed(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let t_wave_seq = t0.elapsed();
    println!("  wavefront, sequential                     : {t_wave_seq:>10.2?}");

    for threads in [2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let t0 = Instant::now();
        let wave_par =
            execute_transformed(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap();
        let t_par = t0.elapsed();
        let diff = base.array("newA").max_abs_diff(wave_par.array("newA"));
        println!(
            "  wavefront, {threads} threads                      : {t_par:>10.2?}  \
             (speedup vs seq GS {:.2}x, max diff {diff:.2e})",
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
        assert!(diff < 1e-9);
    }

    let diff = base.array("newA").max_abs_diff(wave_seq.array("newA"));
    println!("\nwavefront result matches Gauss-Seidel exactly (max diff {diff:.2e});");
    let art = comp.transformed.as_ref().unwrap();
    println!(
        "storage: window {} planes of {}x{} instead of the full {}-plane array.",
        art.result.window,
        m + 2,
        m + 2,
        maxk
    );
}
