#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero external
# dependencies, so --offline must always succeed).
#
#   scripts/verify.sh
#
# Runs: release build, the full test suite (unit + integration + doc),
# the executor schedule-stress suite (explicitly, so a pool regression
# names itself), the service/TCP concurrency suites (overlapping solves,
# bounded-queue shedding, cross-connection shutdown drain), the seeded
# chaos suite (fault injection across service, executor, and TCP), the
# benchmark smoke pass (structural figure assertions),
# a bench-JSON smoke step (including the ps-trace overhead contract), a
# traced serve round-trip (--trace-out export validated and summarized by
# the ps-trace CLI), the ps-analyze static verification of every builtin
# program, docs with warnings denied, and rustfmt.
#
# The stress/TCP/chaos suites run under a hang watchdog: a wedged drain or
# a deadlocked pool fails the gate with a kill instead of hanging CI.
set -euo pipefail
cd "$(dirname "$0")/.."

# Watchdog wrapper for suites that exercise blocking concurrency: SIGTERM
# after $1 seconds, SIGKILL 30 s later if the process ignored it.
bounded() {
    local secs="$1"
    shift
    timeout --kill-after=30 "$secs" "$@" \
        || { echo "watchdog: '$*' exceeded ${secs}s or failed" >&2; exit 1; }
}

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
bounded 1800 cargo test -q --offline

echo "==> cargo test -q --offline --test executor_stress (exactly-once accounting)"
bounded 600 cargo test -q --offline --test executor_stress

echo "==> cargo test -q --offline --test service_stress (oracle-diffed concurrent solves)"
bounded 600 cargo test -q --offline --test service_stress

echo "==> cargo test -q --offline --test serve_tcp (TCP shutdown drain)"
bounded 600 cargo test -q --offline --test serve_tcp

echo "==> cargo test -q --offline --test chaos (seeded fault injection)"
bounded 600 cargo test -q --offline --test chaos

echo "==> cargo test -q --offline --test proto_fuzz (wire-parser properties)"
bounded 300 cargo test -q --offline --test proto_fuzz

echo "==> cargo test -q --offline --benches (smoke: figure assertions)"
cargo test -q --offline --benches

echo "==> bench-JSON smoke (exec_dispatch, reduced sampling)"
# Absolute path: cargo runs bench binaries with the package dir as cwd.
json_out="$PWD/target/bench_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_dispatch -- --bench-json "$json_out" >/dev/null
grep -q '"benchmarks"' "$json_out" && grep -q '"median_ns"' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_eval: engine comparison + batching fields)"
json_out="$PWD/target/bench_eval_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_eval -- --bench-json "$json_out" >/dev/null
grep -q 'jacobi/compiled' "$json_out" && grep -q 'jacobi/treewalk' "$json_out" \
    && grep -q 'pipeline/checked_elide' "$json_out" \
    && grep -q '"batch"' "$json_out" && grep -q '"rejected_outliers"' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_manyrun: compile-once/run-many amortization)"
json_out="$PWD/target/bench_manyrun_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_manyrun -- --bench-json "$json_out" >/dev/null
grep -q 'chain/percall' "$json_out" && grep -q 'chain/program' "$json_out" \
    && grep -q 'jacobi/program' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_serve: service throughput)"
json_out="$PWD/target/bench_serve_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_serve -- --bench-json "$json_out" >/dev/null
grep -q 'serve_warm/w4' "$json_out" && grep -q 'percall_compile_run' "$json_out" \
    && grep -q 'serve_cold' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_trace: tracing overhead contract)"
json_out="$PWD/target/bench_trace_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_trace -- --bench-json "$json_out" >/dev/null
grep -q 'exec_trace/emit_off' "$json_out" && grep -q 'exec_trace/serve_off' "$json_out" \
    && grep -q 'exec_trace/serve_on' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> ps-serve TCP round-trip smoke (ephemeral port)"
serve_log="$PWD/target/ps_serve_smoke.log"
rm -f "$serve_log"
./target/release/ps-serve listen --addr 127.0.0.1:0 --workers 2 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ps-serve did not announce a port" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
load_out=$(bounded 300 ./target/release/ps-serve load --addr "$addr" --clients 2 --requests 16 \
               --program recurrence_1d --vary n=8:24) \
    || { echo "ps-serve load failed" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$load_out"
echo "$load_out" | grep -q ' 0 err,' \
    || { echo "ps-serve load saw error responses" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$load_out" | grep -Eq 'cache_hits=[1-9]' \
    || { echo "warm registry did not report cache hits" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
./target/release/ps-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid" 2>/dev/null || true

echo "==> ps-serve chaos smoke (seeded stalls + disconnects, retrying load)"
serve_log="$PWD/target/ps_serve_chaos_smoke.log"
rm -f "$serve_log"
./target/release/ps-serve listen --addr 127.0.0.1:0 --workers 2 \
    --chaos seed=7,slow=60,stall=60,disconnect=40 --io-timeout 10 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "chaos ps-serve did not announce a port" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
chaos_out=$(bounded 300 ./target/release/ps-serve load --addr "$addr" --clients 2 --requests 16 \
               --program recurrence_1d --retries 8 --seed 7) \
    || { echo "ps-serve chaos load failed" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$chaos_out"
echo "$chaos_out" | grep -q ' 0 err,' \
    || { echo "chaos load: retries did not recover every request" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$chaos_out" | grep -q ' chaos=' \
    || { echo "chaos load: stats line missing the chaos summary" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
./target/release/ps-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid" 2>/dev/null || true

echo "==> ps-serve traced smoke (--trace-out + ps-trace summarize)"
serve_log="$PWD/target/ps_serve_trace_smoke.log"
trace_out="$PWD/target/ps_serve_trace_smoke.json"
rm -f "$serve_log" "$trace_out"
# --solve-threads 2 puts a shared executor pool behind the service so the
# stats line carries the steals/max_live_regions/cancelled_chunks counters.
./target/release/ps-serve listen --addr 127.0.0.1:0 --workers 2 --solve-threads 2 \
    --trace-out "$trace_out" >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "traced ps-serve did not announce a port" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
trace_load=$(bounded 300 ./target/release/ps-serve load --addr "$addr" --clients 2 --requests 16 \
               --program recurrence_1d --vary n=8:24) \
    || { echo "traced ps-serve load failed" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$trace_load"
echo "$trace_load" | grep -q ' stages=' \
    || { echo "traced load: stats line missing per-stage histograms" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$trace_load" | grep -q ' steals=' \
    || { echo "traced load: stats line missing executor counters" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
./target/release/ps-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid" 2>/dev/null || true
[ -s "$trace_out" ] || { echo "--trace-out wrote no trace file" >&2; exit 1; }
./target/release/ps-trace validate "$trace_out" >/dev/null \
    || { echo "exported trace is not valid JSON" >&2; exit 1; }
trace_summary=$(./target/release/ps-trace summarize "$trace_out") \
    || { echo "ps-trace summarize rejected the exported trace" >&2; exit 1; }
echo "$trace_summary" | head -n 1
echo "$trace_summary" | grep -q 'ts_regressions=0' \
    || { echo "exported trace has timestamp regressions" >&2; exit 1; }
echo "$trace_summary" | grep -q 'solve' \
    || { echo "trace summary is missing the solve stage" >&2; exit 1; }

echo "==> ps-analyze static verification of every builtin (zero diagnostics)"
analyze_out=$(./target/release/ps-analyze) \
    || { echo "ps-analyze rejected a builtin program" >&2; exit 1; }
echo "$analyze_out" | tail -n 1
echo "$analyze_out" | grep -q ' 0 errors$' \
    || { echo "ps-analyze reported diagnostics on builtin programs" >&2; exit 1; }

echo "==> cargo doc --offline --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
