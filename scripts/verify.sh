#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero external
# dependencies, so --offline must always succeed).
#
#   scripts/verify.sh
#
# Runs: release build, the full test suite (unit + integration + doc),
# the benchmark smoke pass (structural figure assertions), and rustfmt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo test -q --offline --benches (smoke: figure assertions)"
cargo test -q --offline --benches

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
