#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero external
# dependencies, so --offline must always succeed).
#
#   scripts/verify.sh
#
# Runs: release build, the full test suite (unit + integration + doc),
# the executor schedule-stress suite (explicitly, so a pool regression
# names itself), the benchmark smoke pass (structural figure assertions),
# a bench-JSON smoke step, docs with warnings denied, and rustfmt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo test -q --offline --test executor_stress (exactly-once accounting)"
cargo test -q --offline --test executor_stress

echo "==> cargo test -q --offline --benches (smoke: figure assertions)"
cargo test -q --offline --benches

echo "==> bench-JSON smoke (exec_dispatch, reduced sampling)"
# Absolute path: cargo runs bench binaries with the package dir as cwd.
json_out="$PWD/target/bench_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_dispatch -- --bench-json "$json_out" >/dev/null
grep -q '"benchmarks"' "$json_out" && grep -q '"median_ns"' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_eval: engine comparison + batching fields)"
json_out="$PWD/target/bench_eval_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_eval -- --bench-json "$json_out" >/dev/null
grep -q 'jacobi/compiled' "$json_out" && grep -q 'jacobi/treewalk' "$json_out" \
    && grep -q '"batch"' "$json_out" && grep -q '"rejected_outliers"' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> bench-JSON smoke (exec_manyrun: compile-once/run-many amortization)"
json_out="$PWD/target/bench_manyrun_smoke.json"
rm -f "$json_out"
PS_BENCH_WARMUP=1 PS_BENCH_SAMPLES=2 \
    cargo bench --offline --bench exec_manyrun -- --bench-json "$json_out" >/dev/null
grep -q 'chain/percall' "$json_out" && grep -q 'chain/program' "$json_out" \
    && grep -q 'jacobi/program' "$json_out" \
    || { echo "bench-json smoke: $json_out missing expected fields" >&2; exit 1; }

echo "==> cargo doc --offline --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
