//! Analyzer acceptance implies runtime safety.
//!
//! Property: every random program from the `engine_diff` generators that
//! the static verifier ACCEPTS (no `E06xx` diagnostics) runs cleanly with
//! checked writes enabled — the tag machinery that panics on any double
//! write or window eviction never trips — and an analysis-elided checked
//! run (proven arrays drop their tags) stays bit-identical both to the
//! fully-tagged checked run and to the unchecked baseline. A wrong
//! elision verdict would show up here as a divergence or a panic on the
//! still-tagged side.

#[path = "generators.rs"]
mod generators;

use generators::{arb_chain, arb_grid, assert_bits_eq, grid_inputs, shrink_chain, shrink_grid};
use ps_core::{
    analyze, compile, AnalysisLevel, CompileOptions, Inputs, Program, RuntimeOptions, Sequential,
};
use ps_support::rng::check;

fn checked(analysis: AnalysisLevel) -> RuntimeOptions {
    RuntimeOptions {
        check_writes: true,
        analysis,
        ..Default::default()
    }
}

/// Accept → run elided-checked, full-checked, and unchecked; all three
/// must complete without tripping a runtime check and agree bit-for-bit.
fn accepted_runs_clean(src: &str, inputs: &Inputs) -> Result<(), String> {
    let comp = compile(src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
    let report = analyze(&comp);
    if report.has_errors() {
        return Err(format!(
            "analyzer rejected a front-end-legal program:\n{}\n{src}",
            report.render()
        ));
    }
    let elided = Program::try_compile(&comp, checked(AnalysisLevel::Verify))
        .map_err(|e| format!("verify gate: {e}\n{src}"))?;
    let a = elided
        .run(inputs, &Sequential)
        .map_err(|e| format!("elided checked run: {e}\n{src}"))?;
    let full = Program::compile(&comp, checked(AnalysisLevel::Off));
    let b = full
        .run(inputs, &Sequential)
        .map_err(|e| format!("full checked run: {e}\n{src}"))?;
    assert_bits_eq("elided vs full-checked", &a, &b).map_err(|e| format!("{e}\n{src}"))?;
    let base = Program::compile(&comp, RuntimeOptions::default());
    let c = base
        .run(inputs, &Sequential)
        .map_err(|e| format!("baseline run: {e}\n{src}"))?;
    assert_bits_eq("elided vs unchecked baseline", &a, &c).map_err(|e| format!("{e}\n{src}"))
}

#[test]
fn accepted_random_chains_never_trip_checked_writes() {
    check(0xa11a_c3e1, 48, arb_chain, shrink_chain, |prog| {
        accepted_runs_clean(&prog.source(), &prog.inputs())
    });
}

#[test]
fn accepted_random_grids_never_trip_checked_writes() {
    check(0xa11a_c3e2, 16, arb_grid, shrink_grid, |prog| {
        accepted_runs_clean(&prog.source(), &grid_inputs(5, 5))
    });
}
