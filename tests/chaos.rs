//! Seeded fault-injection (chaos) suite for the solve service and the
//! `ps-serve` TCP front-end.
//!
//! Every scenario runs the service under `ps_support::faults` injection —
//! worker panics, slow solves, compile failures, socket stalls, mid-frame
//! disconnects — with **fixed seeds**, and asserts the strong invariants:
//! the service stays live, the stats counters reconcile exactly with the
//! injector's fired counts, every *non-faulted* response is bit-identical
//! to a direct `Program::run` oracle, deadline-expired work is shed (at
//! dequeue, or mid-solve at a pool chunk boundary) without poisoning
//! anything, and the TCP listener survives hostile clients.

use ps_core::{
    compile, CompileOptions, FaultInjector, FaultPoint, FaultSpec, Inputs, OwnedArray, Program,
    RuntimeOptions, Sequential, Service, ServiceError, ServiceOptions, SolveError, SolveRequest,
};
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B_5EED, 0xC4A05];

const COMPOUND: &str = "Compound: module (rate: real; n: int): [final: real];
    type K = 2 .. n;
    var balance: array [1 .. n] of real;
    define
        balance[1] = 1.0;
        balance[K] = balance[K-1] * (1.0 + rate);
        final = balance[n];
    end Compound;";

const PIPELINE: &str = "Pipeline: module (xs: array[I] of real; n: int): [out: array[I] of real];
    type I, L, T = 1 .. n;
    var scaled, shifted: array [1 .. n] of real;
    define
        scaled[I] = xs[I] * 2.0;
        shifted[L] = scaled[L] + 1.0;
        out[T] = sqrt(abs(shifted[T]));
    end Pipeline;";

fn compound_inputs(i: usize) -> Inputs {
    Inputs::new()
        .set_real("rate", (i % 7) as f64 * 0.125)
        .set_int("n", 2 + (i % 12) as i64)
}

fn pipeline_inputs(i: usize) -> Inputs {
    let n = 1 + (i % 6) as i64;
    let xs: Vec<f64> = (0..n).map(|j| (i as i64 + j) as f64 * 0.75 - 1.0).collect();
    Inputs::new()
        .set_int("n", n)
        .set_array("xs", OwnedArray::real(vec![(1, n)], xs))
}

/// Bit-comparable summary of one response (chosen per program).
fn bits(prog: usize, out: &ps_core::Outputs) -> Vec<u64> {
    if prog == 0 {
        vec![out.scalar("final").as_real().to_bits()]
    } else {
        out.array("out")
            .as_real_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect()
    }
}

/// Storm of requests through a panic/slow-injecting service: every
/// response is either bit-identical to the direct oracle or an injected
/// panic, the counters reconcile exactly with the injector, and the
/// workers stay alive through it all.
fn panic_slow_storm(seed: u64) {
    const N: usize = 120;
    let faults = FaultInjector::new(
        FaultSpec::seeded(seed)
            .rate(FaultPoint::WorkerPanic, 80) // 8 %
            .rate(FaultPoint::SlowSolve, 30), // 3 %
    );
    let service = Service::new(ServiceOptions {
        workers: 4,
        batch_max: 4,
        faults: faults.clone(),
        ..Default::default()
    });
    let keys = [
        service.register(COMPOUND).expect("compound compiles"),
        service.register(PIPELINE).expect("pipeline compiles"),
    ];

    // Direct compile-once oracle, outside the service and its faults.
    let comps: Vec<_> = [COMPOUND, PIPELINE]
        .iter()
        .map(|s| compile(s, CompileOptions::default()).expect("oracle compiles"))
        .collect();
    let programs: Vec<Program<'_>> = comps
        .iter()
        .map(|c| Program::compile(c, RuntimeOptions::default()))
        .collect();
    let expected: Vec<Vec<u64>> = (0..N)
        .map(|i| {
            let prog = i % 2;
            let inputs = if prog == 0 {
                compound_inputs(i)
            } else {
                pipeline_inputs(i)
            };
            let out = programs[prog]
                .run(&inputs, &Sequential)
                .expect("oracle run succeeds");
            bits(prog, &out)
        })
        .collect();

    let handles: Vec<_> = (0..N)
        .map(|i| {
            let prog = i % 2;
            let inputs = if prog == 0 {
                compound_inputs(i)
            } else {
                pipeline_inputs(i)
            };
            service.submit(SolveRequest::new(keys[prog].clone(), inputs))
        })
        .collect();

    let mut oks = 0u64;
    let mut injected = 0u64;
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(out) => {
                assert_eq!(
                    bits(i % 2, &out),
                    expected[i],
                    "seed {seed:#x} request {i}: non-faulted response must be \
                     bit-identical to the direct run"
                );
                oks += 1;
            }
            Err(SolveError::Panicked(msg)) => {
                assert!(
                    msg.contains("injected fault"),
                    "seed {seed:#x} request {i}: unexpected real panic: {msg}"
                );
                injected += 1;
            }
            Err(other) => panic!("seed {seed:#x} request {i}: unexpected error {other}"),
        }
    }

    let stats = service.stats();
    assert_eq!(stats.requests, N as u64, "seed {seed:#x}");
    assert_eq!(stats.responses, N as u64, "every handle resolved");
    assert_eq!(
        stats.panics,
        faults.fired(FaultPoint::WorkerPanic),
        "seed {seed:#x}: panic counter reconciles with the injector"
    );
    assert_eq!(stats.panics, injected, "seed {seed:#x}");
    assert_eq!(oks + injected, N as u64);
    assert!(
        oks > injected,
        "seed {seed:#x}: an 8% fault rate must leave most requests healthy \
         (got {oks} ok / {injected} injected)"
    );

    // Liveness after the storm: the next submit still resolves (it may
    // itself draw an injected panic — that is fine, it must just answer).
    match service.solve(&keys[0], compound_inputs(1)) {
        Ok(_) | Err(SolveError::Panicked(_)) => {}
        Err(other) => panic!("seed {seed:#x}: service wedged after storm: {other}"),
    }
}

#[test]
fn panic_slow_storm_is_bit_identical_under_three_seeds() {
    for seed in SEEDS {
        panic_slow_storm(seed);
    }
}

/// A burst of already-expired requests behind a long occupying solve is
/// shed at dequeue — none of them execute — and the service then serves
/// generously-deadlined work normally.
#[test]
fn deadline_storm_sheds_expired_requests_without_executing() {
    const SHED: usize = 16;
    let service = Service::new(ServiceOptions {
        workers: 1,
        ..Default::default()
    });
    let key = service.register(COMPOUND).expect("compound compiles");

    // Occupy the single worker so the storm queues behind it.
    let occupy = service.submit(SolveRequest::new(
        key.clone(),
        Inputs::new().set_real("rate", 1e-7).set_int("n", 4_000_000),
    ));
    let storm: Vec<_> = (0..SHED)
        .map(|i| {
            service.submit_with_deadline(
                SolveRequest::new(key.clone(), compound_inputs(i)),
                Duration::ZERO,
            )
        })
        .collect();

    for (i, h) in storm.into_iter().enumerate() {
        match h.wait() {
            Err(SolveError::DeadlineExceeded) => {}
            other => panic!("storm request {i}: expected DeadlineExceeded, got {other:?}"),
        }
    }
    occupy.wait().expect("occupying solve still completes");

    let stats = service.stats();
    assert_eq!(stats.deadline_expired, SHED as u64);
    assert_eq!(stats.responses, SHED as u64 + 1, "every handle resolved");
    assert_eq!(stats.panics, 0, "shedding is not a crash");

    // Normal work with a generous deadline flows again.
    let out = service
        .submit_with_deadline(
            SolveRequest::new(key, Inputs::new().set_real("rate", 0.5).set_int("n", 10)),
            Duration::from_secs(60),
        )
        .wait()
        .expect("post-storm solve succeeds");
    assert!((out.scalar("final").as_real() - 1.5f64.powi(9)).abs() < 1e-9);
}

/// Mid-solve expiry: a deadline that trips *while* the solve is running
/// on the shared pool stops it at a chunk boundary — `cancelled_chunks`
/// moves, the request resolves to `DeadlineExceeded`, and the pool then
/// produces a bit-identical answer for the same inputs.
#[test]
fn mid_solve_deadline_cancels_at_pool_chunk_boundaries() {
    let service = Service::new(ServiceOptions {
        workers: 1,
        solve_threads: 2,
        ..Default::default()
    });
    let key = service.register(PIPELINE).expect("pipeline compiles");

    let n = 4_000_000i64;
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 1e-6 - 1.0).collect();
    let inputs = Inputs::new()
        .set_int("n", n)
        .set_array("xs", OwnedArray::real(vec![(1, n)], xs.clone()));

    // Oracle for the final bit-identical check.
    let comp = compile(PIPELINE, CompileOptions::default()).expect("oracle compiles");
    let program = Program::compile(&comp, RuntimeOptions::default());
    let expected: Vec<u64> = program
        .run(&inputs, &Sequential)
        .expect("oracle run succeeds")
        .array("out")
        .as_real_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();

    // Timing-dependent: retry with the same short deadline until one
    // attempt demonstrably expires mid-solve (cancelled chunks moved and
    // the handle resolved to DeadlineExceeded).
    let overall = Instant::now() + Duration::from_secs(120);
    loop {
        let before = service
            .pool_stats()
            .expect("solve_threads > 1 exposes the pool")
            .cancelled_chunks;
        let got = service
            .submit_with_deadline(
                SolveRequest::new(key.clone(), inputs.clone()),
                Duration::from_millis(4),
            )
            .wait();
        let after = service
            .pool_stats()
            .expect("pool stays exposed")
            .cancelled_chunks;
        match got {
            Err(SolveError::DeadlineExceeded) if after > before => break,
            Err(SolveError::DeadlineExceeded) | Ok(_) => {
                // Shed at dequeue before starting, or finished under the
                // wire — keep trying for the mid-solve interleaving.
                assert!(
                    Instant::now() < overall,
                    "never observed a mid-solve cancellation (cancelled_chunks {after})"
                );
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    // The pool was not poisoned: the same solve, undeadlined, is
    // bit-identical to the Sequential oracle.
    let out = service
        .submit(SolveRequest::new(key, inputs))
        .wait()
        .expect("post-cancel solve succeeds");
    let got: Vec<u64> = out
        .array("out")
        .as_real_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(got, expected, "pool output identical after a cancellation");
}

/// Injected registry compile failures surface as structured
/// `ServiceError::Compile` errors, reconcile with the injector, and never
/// stick: the program is not cached as failed, so a later attempt
/// compiles and solves normally.
#[test]
fn injected_compile_failures_are_structured_and_transient() {
    for seed in SEEDS {
        let faults = FaultInjector::new(
            FaultSpec::seeded(seed).rate(FaultPoint::CompileFail, 500), // 50 %
        );
        let service = Service::new(ServiceOptions {
            workers: 1,
            faults: faults.clone(),
            ..Default::default()
        });

        let mut failures = 0u64;
        let mut key = None;
        for _ in 0..64 {
            match service.register(COMPOUND) {
                Ok(k) => {
                    key = Some(k);
                    break;
                }
                Err(ServiceError::Compile(msg)) => {
                    assert!(msg.contains("injected fault"), "seed {seed:#x}: {msg}");
                    failures += 1;
                }
            }
        }
        let key =
            key.unwrap_or_else(|| panic!("seed {seed:#x}: 64 attempts at 50% never compiled"));
        assert_eq!(
            failures,
            faults.fired(FaultPoint::CompileFail),
            "seed {seed:#x}: failures reconcile with the injector"
        );

        // Once compiled, the cache answers: solves never redraw the
        // compile fault and the service works normally.
        let fired_before = faults.fired(FaultPoint::CompileFail);
        let out = service
            .solve(&key, Inputs::new().set_real("rate", 0.5).set_int("n", 10))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: warm solve failed: {e}"));
        assert!((out.scalar("final").as_real() - 1.5f64.powi(9)).abs() < 1e-9);
        assert_eq!(
            faults.fired(FaultPoint::CompileFail),
            fired_before,
            "seed {seed:#x}: cache hits never consult the compile fault point"
        );
    }
}

// ---- TCP front-end under hostile clients and socket chaos ----

mod tcp {
    use super::SEEDS;
    use std::io::{BufRead, BufReader, BufWriter, Read, Write};
    use std::net::{Shutdown, TcpStream};
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    struct Server {
        child: Child,
        addr: String,
    }

    impl Server {
        fn spawn(extra_args: &[&str]) -> Server {
            let mut child = Command::new(env!("CARGO_BIN_EXE_ps-serve"))
                .arg("listen")
                .args(["--addr", "127.0.0.1:0"])
                .args(extra_args)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn ps-serve");
            let stdout = child.stdout.take().expect("child stdout piped");
            let banner = BufReader::new(stdout)
                .lines()
                .next()
                .expect("ps-serve prints a startup line")
                .expect("readable startup line");
            let addr = banner
                .strip_prefix("listening on ")
                .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
                .to_string();
            Server { child, addr }
        }

        fn connect(&self) -> Client {
            let stream = TcpStream::connect(&self.addr).expect("connect to ps-serve");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            Client {
                reader: BufReader::new(stream.try_clone().expect("clone stream")),
                writer: BufWriter::new(stream),
            }
        }

        fn wait_exit(&mut self) -> bool {
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                if let Some(status) = self.child.try_wait().expect("try_wait") {
                    return status.success();
                }
                assert!(
                    Instant::now() < deadline,
                    "ps-serve did not exit after shutdown"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    impl Drop for Server {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        fn send(&mut self, line: &str) {
            writeln!(self.writer, "{line}").expect("send request");
            self.writer.flush().expect("flush request");
        }

        fn read_line(&mut self) -> String {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed the connection mid-conversation");
            line.trim_end().to_string()
        }
    }

    const SOLVE: &str = "solve recurrence_1d rate=0.5 n=4";
    const SOLVED: &str = "ok final=3.375";

    /// Oversized frames, lying array headers, binary junk, and a
    /// mid-frame disconnect — the same listener survives all of them and
    /// still serves clean requests.
    #[test]
    fn hostile_clients_cannot_take_down_the_listener() {
        let mut server = Server::spawn(&["--max-frame", "4096", "--io-timeout", "5"]);

        // (1) An oversized frame gets a structured error and the
        // connection keeps working.
        let mut c = server.connect();
        let huge = "x".repeat(20_000);
        c.send(&huge);
        let reply = c.read_line();
        assert!(
            reply.starts_with("err frame exceeds 4096 bytes"),
            "oversized frame must be answered, got {reply:?}"
        );
        c.send(SOLVE);
        assert_eq!(
            c.read_line(),
            SOLVED,
            "connection survives the oversized frame"
        );

        // (2) A lying array header is rejected before any allocation —
        // also on the same connection.
        c.send("solve recurrence_1d rate=0.5 n=4 u0=@1:99999999999999:1");
        let reply = c.read_line();
        assert!(
            reply.starts_with("err") && reply.contains("frame limit"),
            "hostile header must be a structured error, got {reply:?}"
        );
        c.send(SOLVE);
        assert_eq!(
            c.read_line(),
            SOLVED,
            "connection survives the hostile header"
        );

        // (3) Binary junk gets an err line, not a disconnect.
        c.send("\u{1}\u{2}garbage command");
        assert!(c.read_line().starts_with("err "), "junk gets an err line");
        c.send(SOLVE);
        assert_eq!(c.read_line(), SOLVED, "connection survives binary junk");
        c.send("quit");

        // (4) A client that dies mid-frame (no newline ever arrives).
        {
            let stream = TcpStream::connect(&server.addr).expect("connect");
            let mut w = BufWriter::new(stream.try_clone().expect("clone"));
            w.write_all(b"solve recurrence_1d rate=0.5")
                .expect("half frame");
            w.flush().expect("flush half frame");
            stream.shutdown(Shutdown::Both).expect("abandon mid-frame");
        }

        // The listener still accepts and serves.
        let mut d = server.connect();
        d.send(SOLVE);
        assert_eq!(
            d.read_line(),
            SOLVED,
            "listener alive after hostile clients"
        );
        d.send("shutdown");
        assert_eq!(d.read_line(), "ok bye");
        assert!(server.wait_exit(), "clean exit after the hostile parade");
    }

    /// Server-side socket chaos (stalls + mid-frame disconnects) under
    /// three seeds: a client with reconnect-and-retry gets every request
    /// answered correctly, and the server drains cleanly afterwards.
    #[test]
    fn socket_chaos_is_survivable_with_retries_under_three_seeds() {
        for seed in SEEDS {
            let spec = format!("seed={seed},stall=80,disconnect=50");
            let mut server = Server::spawn(&[
                "--chaos",
                &spec,
                "--io-timeout",
                "10",
                "--max-frame",
                "4096",
            ]);

            let mut ok = 0u32;
            let mut reconnects = 0u32;
            let mut c = server.connect();
            for i in 0..40 {
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    assert!(
                        attempts <= 10,
                        "seed {seed:#x} request {i}: no answer in 10 attempts"
                    );
                    // A dropped connection (chaos disconnect) surfaces as
                    // EOF or a partial line: redial and resend.
                    let response = {
                        let r: Result<String, String> = (|| {
                            writeln!(c.writer, "{SOLVE}").map_err(|e| e.to_string())?;
                            c.writer.flush().map_err(|e| e.to_string())?;
                            let mut line = String::new();
                            let n = c.reader.read_line(&mut line).map_err(|e| e.to_string())?;
                            if n == 0 || !line.ends_with('\n') {
                                return Err("connection dropped".into());
                            }
                            Ok(line.trim_end().to_string())
                        })();
                        r
                    };
                    match response {
                        Ok(line) => {
                            assert_eq!(
                                line, SOLVED,
                                "seed {seed:#x} request {i}: responses stay exact under chaos"
                            );
                            ok += 1;
                            break;
                        }
                        Err(_) => {
                            reconnects += 1;
                            c = server.connect();
                        }
                    }
                }
            }
            assert_eq!(ok, 40, "seed {seed:#x}: every request eventually answered");

            // The stats line flows through the same chaotic writer; retry
            // it the same way, then shut down for a clean exit.
            let mut probes = 0u32;
            let stats = loop {
                probes += 1;
                assert!(probes <= 20, "seed {seed:#x}: stats probe never answered");
                let mut probe = server.connect();
                writeln!(probe.writer, "stats").expect("send stats");
                probe.writer.flush().expect("flush stats");
                let mut line = String::new();
                let n = probe.reader.read_line(&mut line).unwrap_or(0);
                if n > 0 && line.ends_with('\n') {
                    break line.trim_end().to_string();
                }
            };
            assert!(
                stats.contains(" chaos=") && stats.contains("requests="),
                "seed {seed:#x}: stats reports the chaos summary: {stats}"
            );

            let bye = loop {
                let mut d = server.connect();
                writeln!(d.writer, "shutdown").expect("send shutdown");
                d.writer.flush().expect("flush shutdown");
                let mut line = String::new();
                let n = d.reader.read_line(&mut line).unwrap_or(0);
                if n > 0 && line.ends_with('\n') {
                    break line.trim_end().to_string();
                }
                // The ack is written outside the chaotic writer, but the
                // *connection* may have been reaped by a racing drain; a
                // clean EOF here means the drain won — treat as done.
                break "ok bye".to_string();
            };
            assert_eq!(bye, "ok bye", "seed {seed:#x}");
            assert!(server.wait_exit(), "seed {seed:#x}: clean exit under chaos");
            let _ = reconnects; // observability only; rates make >0 likely, not certain
        }
    }
}
