//! Integration tests for the `psc` command-line interface.

use std::process::Command;

fn psc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_psc"))
        .args(args)
        .output()
        .expect("psc runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn list_names_builtins() {
    let (stdout, _, ok) = psc(&["--list"]);
    assert!(ok);
    for name in [
        "@relaxation_v1",
        "@relaxation_v2",
        "@heat_1d",
        "@wave_1d",
        "@table_2d",
    ] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn flowchart_emission() {
    let (stdout, _, ok) = psc(&["@relaxation_v1"]);
    assert!(ok);
    assert!(stdout.contains("DO K ("), "{stdout}");
    assert!(stdout.contains("DOALL I ("), "{stdout}");
    assert!(stdout.contains("virtual(window 2)"), "{stdout}");
}

#[test]
fn c_emission() {
    let (stdout, _, ok) = psc(&["@relaxation_v1", "--emit", "c"]);
    assert!(ok);
    assert!(stdout.contains("void ps_Relaxation"), "{stdout}");
    assert!(stdout.contains("#pragma omp parallel for"), "{stdout}");
}

#[test]
fn hyperplane_flag() {
    let (stdout, _, ok) = psc(&["@relaxation_v2", "--hyperplane", "windowed"]);
    assert!(ok);
    assert!(stdout.contains("pi = [2, 1, 1]"), "{stdout}");
    assert!(
        stdout.contains("window on the time dimension: 3"),
        "{stdout}"
    );
}

#[test]
fn components_and_depgraph_emission() {
    let (stdout, _, ok) = psc(&["@relaxation_v1", "--emit", "components"]);
    assert!(ok);
    assert!(stdout.contains("null"), "{stdout}");
    let (stdout, _, ok) = psc(&["@relaxation_v1", "--emit", "depgraph"]);
    assert!(ok);
    assert!(stdout.contains("digraph"), "{stdout}");
}

#[test]
fn equation_translation() {
    let (stdout, _, ok) = psc(&[
        "--equation",
        "A^{k}_{i} = (A^{k-1}_{i-1} + A^{k-1}_{i+1}) / 2",
    ]);
    assert!(ok);
    assert!(stdout.contains("Translated: module"), "{stdout}");
    assert!(stdout.contains("A[K-1,I-1]"), "{stdout}");
}

#[test]
fn file_input_and_errors() {
    let dir = std::env::temp_dir().join(format!("psc_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("mini.ps");
    std::fs::write(
        &f,
        "Mini: module (x: int): [y: int]; define y = x * 2; end Mini;",
    )
    .unwrap();
    let (stdout, _, ok) = psc(&[f.to_str().unwrap(), "--emit", "hir"]);
    assert!(ok);
    assert!(stdout.contains("module Mini"), "{stdout}");

    // Bad source reports diagnostics and fails.
    let bad = dir.join("bad.ps");
    std::fs::write(&bad, "Bad: module (): [y: int]; define y = zzz; end Bad;").unwrap();
    let (_, stderr, ok) = psc(&[bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("E0246"), "{stderr}");

    // Unknown builtin.
    let (_, stderr, ok) = psc(&["@nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown built-in"), "{stderr}");
}

#[test]
fn wave_builtin_schedules_with_window_three() {
    let (stdout, _, ok) = psc(&["@wave_1d"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("virtual(window 3)"), "{stdout}");
}
