//! Compile the emitted C with the system compiler (when available) and
//! compare its checksum against the Rust interpreter on identical inputs.
//!
//! Skipped silently when no C compiler is installed.

use ps_core::{
    compile, emit_main, execute, CompileOptions, Inputs, OwnedArray, RuntimeOptions, Sequential,
    StorageMode,
};
use std::process::Command;

fn find_cc() -> Option<&'static str> {
    ["cc", "gcc", "clang"]
        .into_iter()
        .find(|&cc| {
            Command::new(cc)
                .arg("--version")
                .output()
                .map(|o| o.status.success())
                .unwrap_or(false)
        })
        .map(|v| v as _)
}

/// Fill pattern matching `emit_main`: reals get `(flat % 97) * 0.25 + 1.0`.
fn pattern_real(extent: usize) -> Vec<f64> {
    (0..extent).map(|i| (i % 97) as f64 * 0.25 + 1.0).collect()
}

/// Compile C source + main, run it, and parse `name=value` checksums.
fn run_c(cc: &str, c_code: &str, main_code: &str, tag: &str) -> Vec<(String, f64)> {
    let dir = std::env::temp_dir().join(format!("ps_codegen_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.c");
    let bin = dir.join("prog");
    std::fs::write(&src, format!("{c_code}\n{main_code}")).unwrap();
    let out = Command::new(cc)
        .arg("-O1")
        .arg("-o")
        .arg(&bin)
        .arg(&src)
        .arg("-lm")
        .output()
        .expect("compiler runs");
    assert!(
        out.status.success(),
        "cc failed:\n{}\n--- source ---\n{c_code}\n{main_code}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&bin).output().expect("binary runs");
    assert!(run.status.success());
    let stdout = String::from_utf8_lossy(&run.stdout);
    stdout
        .lines()
        .filter_map(|l| {
            let (name, value) = l.split_once('=')?;
            Some((name.to_string(), value.trim().parse::<f64>().ok()?))
        })
        .collect()
}

#[test]
fn relaxation_v1_c_matches_interpreter() {
    let Some(cc) = find_cc() else {
        eprintln!("skipping: no C compiler found");
        return;
    };
    let (m, maxk) = (8i64, 10i64);
    let comp = compile(ps_core::programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let main_code = emit_main(&comp.module, &[("M", m), ("maxK", maxk)]);
    let checks = run_c(cc, &comp.c_code, &main_code, "v1");

    let side = (m + 2) as usize;
    let inputs = Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            OwnedArray::real(vec![(0, m + 1), (0, m + 1)], pattern_real(side * side)),
        );
    let out = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let rust_sum: f64 = out.array("newA").as_real_slice().iter().sum();

    let (name, c_sum) = &checks[0];
    assert_eq!(name, "newA");
    assert!(
        (c_sum - rust_sum).abs() < 1e-6 * rust_sum.abs().max(1.0),
        "C {c_sum} vs Rust {rust_sum}"
    );
}

#[test]
fn wavefront_c_matches_interpreter() {
    let Some(cc) = find_cc() else {
        eprintln!("skipping: no C compiler found");
        return;
    };
    let (m, maxk) = (6i64, 7i64);
    let comp = compile(
        ps_core::programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Windowed),
            ..Default::default()
        },
    )
    .unwrap();

    // Untransformed C.
    let main_plain = emit_main(&comp.module, &[("M", m), ("maxK", maxk)]);
    let plain = run_c(cc, &comp.c_code, &main_plain, "v2_plain");

    // Transformed (windowed wavefront with drain) C.
    let art = comp.transformed.as_ref().unwrap();
    let main_wave = emit_main(&art.result.module, &[("M", m), ("maxK", maxk)]);
    let wave = run_c(cc, &art.c_code, &main_wave, "v2_wave");

    assert_eq!(plain[0].0, "newA");
    assert_eq!(wave[0].0, "newA");
    assert!(
        (plain[0].1 - wave[0].1).abs() < 1e-6 * plain[0].1.abs().max(1.0),
        "plain C {} vs wavefront C {}",
        plain[0].1,
        wave[0].1
    );

    // And both agree with the Rust interpreter.
    let side = (m + 2) as usize;
    let inputs = Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            OwnedArray::real(vec![(0, m + 1), (0, m + 1)], pattern_real(side * side)),
        );
    let out = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let rust_sum: f64 = out.array("newA").as_real_slice().iter().sum();
    assert!((plain[0].1 - rust_sum).abs() < 1e-6 * rust_sum.abs().max(1.0));
}

#[test]
fn builtin_programs_emit_compilable_c() {
    let Some(cc) = find_cc() else {
        eprintln!("skipping: no C compiler found");
        return;
    };
    // Compile-only smoke test over the whole program library.
    for (name, src) in ps_core::programs::ALL {
        let comp = compile(src, CompileOptions::default()).unwrap();
        let dir =
            std::env::temp_dir().join(format!("ps_codegen_smoke_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let srcf = dir.join("mod.c");
        std::fs::write(&srcf, &comp.c_code).unwrap();
        let out = Command::new(cc)
            .arg("-c")
            .arg("-O1")
            .arg("-o")
            .arg(dir.join("mod.o"))
            .arg(&srcf)
            .output()
            .expect("compiler runs");
        assert!(
            out.status.success(),
            "{name}: cc failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stderr),
            comp.c_code
        );
    }
}
