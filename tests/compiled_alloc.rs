//! Allocation accounting for the compiled engine's hot path.
//!
//! A counting `GlobalAlloc` wraps the system allocator; the key property is
//! that the number of heap allocations during a `run_module` is
//! **independent of the iteration count**: growing the grid side (more
//! `DOALL` elements per region) or the time extent (more `DO` iterations,
//! each dispatching the same regions) must not change — or, for regions,
//! must only linearly shift — the allocation count. Array buffers are
//! single allocations whatever their length, so store setup cancels out and
//! any per-iteration allocation in the tape walk would show up directly.

use ps_core::{
    compile, execute, programs, Compilation, CompileOptions, Engine, Inputs, OwnedArray, Program,
    RuntimeOptions, Sequential,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn grid_inputs(m: i64, maxk: i64) -> Inputs {
    let side = (m + 2) as usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| ((i * 31 + 7) % 101) as f64 * 0.25)
        .collect();
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
        )
}

fn run(comp: &Compilation, inputs: &Inputs, engine: Engine) {
    execute(
        comp,
        inputs,
        &Sequential,
        RuntimeOptions {
            engine,
            ..Default::default()
        },
    )
    .unwrap();
}

/// Same region structure, vastly different element counts: the compiled
/// engine must allocate exactly as much for a 26×26 grid as for a 10×10
/// one (buffers are one allocation regardless of length), proving the
/// steady-state `DOALL` element loop allocates nothing.
#[test]
fn doall_elements_are_allocation_free() {
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let maxk = 6;
    let small = grid_inputs(8, maxk);
    let large = grid_inputs(24, maxk);
    // Warm both shapes once: first-use interning and lazy one-time setup
    // must not pollute the measured runs.
    run(&comp, &small, Engine::Compiled);
    run(&comp, &large, Engine::Compiled);

    let a_small = allocs_during(|| run(&comp, &small, Engine::Compiled));
    let a_large = allocs_during(|| run(&comp, &large, Engine::Compiled));
    assert_eq!(
        a_small, a_large,
        "allocation count must not depend on the DOALL element count \
         (10×10 vs 26×26 grid, {maxk} planes)"
    );
}

/// Compile-once / run-many: after the first run of a `Program` with a
/// given parameter vector, later runs perform **zero lowering or
/// validation allocations** — the tapes were lowered at `Program::compile`,
/// the address specialization is a cache hit, and the store draws every
/// buffer from the run arena. Observable two ways: the per-run allocation
/// count reaches a fixed point immediately (run 2 == run 3 == run 4), and
/// it sits far below the compile-per-call path, whose every call re-lowers
/// and re-validates each tape.
#[test]
fn program_second_run_does_no_lowering_allocations() {
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let inputs = grid_inputs(8, 6);
    let prog = Program::compile(&comp, RuntimeOptions::default());
    prog.run(&inputs, &Sequential).unwrap(); // first run: specialize + fill pools
    let steady: Vec<usize> = (0..3)
        .map(|_| {
            allocs_during(|| {
                prog.run(&inputs, &Sequential).unwrap();
            })
        })
        .collect();
    assert_eq!(
        steady[0], steady[1],
        "second and third runs allocate identically: {steady:?}"
    );
    assert_eq!(steady[1], steady[2], "the fixed point holds: {steady:?}");
    assert_eq!(
        prog.specialization_count(),
        1,
        "repeat runs never re-lower or re-specialize"
    );
    // The compile-per-call path pays lowering + validation + fresh-store
    // allocation on every call.
    run(&comp, &inputs, Engine::Compiled); // warm interning etc.
    let per_call = allocs_during(|| run(&comp, &inputs, Engine::Compiled));
    assert!(
        steady[0] * 2 < per_call,
        "pooled Program::run ({}) must allocate less than half of the \
         compile-per-call path ({per_call})",
        steady[0]
    );
}

/// Growing the DO extent adds parallel regions (each region costs a
/// constant: one frames clone per chunk) but no per-element allocations:
/// the count must grow exactly linearly in the number of DO iterations.
/// `A` is windowed (2 planes), so storage does not grow with `maxK`.
#[test]
fn do_iterations_cost_constant_allocations() {
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let a = comp.module.data_by_name("A").unwrap();
    assert_eq!(
        comp.schedule.memory.window(a, 0),
        Some(2),
        "A must be windowed so storage is maxK-independent"
    );
    let m = 8;
    let inputs: Vec<Inputs> = [8, 16, 32, 64].iter().map(|&k| grid_inputs(m, k)).collect();
    for i in &inputs {
        run(&comp, i, Engine::Compiled);
    }
    let counts: Vec<usize> = inputs
        .iter()
        .map(|i| allocs_during(|| run(&comp, i, Engine::Compiled)))
        .collect();
    // Per-DO-iteration deltas: 8→16, 16→32, 32→64 double the added
    // iterations, so the deltas must double too (pure linearity).
    let d1 = counts[1] - counts[0];
    let d2 = counts[2] - counts[1];
    let d3 = counts[3] - counts[2];
    assert_eq!(
        d2,
        2 * d1,
        "superlinear allocation growth in DO: {counts:?}"
    );
    assert_eq!(
        d3,
        2 * d2,
        "superlinear allocation growth in DO: {counts:?}"
    );
}
