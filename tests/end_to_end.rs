//! End-to-end differential tests: the scheduled parallel interpreter, the
//! sequential interpreter, the demand-driven oracle, and the hyperplane
//! wavefront must all agree on the computed values.

use ps_core::{
    compile, execute, execute_transformed, programs, run_naive, CompileOptions, Inputs, OwnedArray,
    RuntimeOptions, Sequential, StorageMode, ThreadPool,
};

fn grid(m: i64, pattern: impl Fn(i64, i64) -> f64) -> OwnedArray {
    let side = (m + 2) as usize;
    let mut data = vec![0.0f64; side * side];
    for i in 0..side as i64 {
        for j in 0..side as i64 {
            data[(i * side as i64 + j) as usize] = pattern(i, j);
        }
    }
    OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data)
}

fn relaxation_inputs(m: i64, maxk: i64) -> Inputs {
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            grid(m, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.5),
        )
}

#[test]
fn jacobi_scheduled_matches_oracle() {
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let inputs = relaxation_inputs(8, 10);
    let scheduled = execute(
        &comp,
        &inputs,
        &Sequential,
        RuntimeOptions {
            check_writes: true,
            ..Default::default()
        },
    )
    .unwrap();
    let oracle = run_naive(&comp.module, &inputs).unwrap();
    let diff = scheduled.array("newA").max_abs_diff(oracle.array("newA"));
    assert!(diff < 1e-12, "scheduled vs oracle diff {diff}");
}

#[test]
fn jacobi_parallel_matches_sequential() {
    let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    let inputs = relaxation_inputs(16, 12);
    let seq = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    for threads in [2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let par = execute(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap();
        let diff = seq.array("newA").max_abs_diff(par.array("newA"));
        assert_eq!(diff, 0.0, "threads={threads}");
    }
}

#[test]
fn gauss_seidel_scheduled_matches_oracle() {
    let comp = compile(programs::RELAXATION_V2, CompileOptions::default()).unwrap();
    let inputs = relaxation_inputs(8, 10);
    let scheduled = execute(
        &comp,
        &inputs,
        &Sequential,
        RuntimeOptions {
            check_writes: true,
            ..Default::default()
        },
    )
    .unwrap();
    let oracle = run_naive(&comp.module, &inputs).unwrap();
    let diff = scheduled.array("newA").max_abs_diff(oracle.array("newA"));
    assert!(diff < 1e-12, "diff {diff}");
}

/// The headline result: the windowed hyperplane wavefront computes exactly
/// the same grid as the untransformed Gauss-Seidel program — sequentially,
/// in parallel, and with the write checker on.
#[test]
fn wavefront_matches_untransformed() {
    let comp = compile(
        programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Windowed),
            ..Default::default()
        },
    )
    .unwrap();
    let inputs = relaxation_inputs(10, 9);

    let base = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let wave_checked = execute_transformed(
        &comp,
        &inputs,
        &Sequential,
        RuntimeOptions {
            check_writes: true,
            ..Default::default()
        },
    )
    .unwrap();
    let diff = base.array("newA").max_abs_diff(wave_checked.array("newA"));
    assert!(diff < 1e-12, "wavefront vs Gauss-Seidel diff {diff}");

    let pool = ThreadPool::new(4);
    let wave_par = execute_transformed(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap();
    let pdiff = wave_checked
        .array("newA")
        .max_abs_diff(wave_par.array("newA"));
    assert_eq!(pdiff, 0.0, "parallel wavefront is deterministic");
}

/// Full-storage mode agrees with windowed mode.
#[test]
fn full_mode_matches_windowed() {
    let inputs = relaxation_inputs(6, 7);
    let windowed = compile(
        programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Windowed),
            ..Default::default()
        },
    )
    .unwrap();
    let full = compile(
        programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Full),
            ..Default::default()
        },
    )
    .unwrap();
    let a =
        execute_transformed(&windowed, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let b = execute_transformed(&full, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    assert!(a.array("newA").max_abs_diff(b.array("newA")) < 1e-12);
}

#[test]
fn heat_1d_agrees_with_oracle_across_sizes() {
    let comp = compile(programs::HEAT_1D, CompileOptions::default()).unwrap();
    for (m, maxk) in [(4i64, 3i64), (16, 10), (33, 21)] {
        let rod: Vec<f64> = (0..(m + 2))
            .map(|i| (i as f64 * 0.37).sin() + 1.0)
            .collect();
        let inputs = Inputs::new()
            .set_int("M", m)
            .set_int("maxK", maxk)
            .set_real("alpha", 0.2)
            .set_array("u0", OwnedArray::real(vec![(0, m + 1)], rod));
        let scheduled = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        let oracle = run_naive(&comp.module, &inputs).unwrap();
        let diff = scheduled.array("uT").max_abs_diff(oracle.array("uT"));
        assert!(diff < 1e-12, "M={m} maxK={maxk}: diff {diff}");
    }
}

#[test]
fn pipeline_with_fusion_matches_without() {
    let plain = compile(programs::PIPELINE, CompileOptions::default()).unwrap();
    let mut fused_opts = CompileOptions::default();
    fused_opts.schedule.fuse_loops = true;
    let fused = compile(programs::PIPELINE, fused_opts).unwrap();
    // Fusion actually fires: fewer loops.
    let (_, plain_doall) = plain.schedule.flowchart.loop_counts();
    let (_, fused_doall) = fused.schedule.flowchart.loop_counts();
    assert!(fused_doall < plain_doall, "{plain_doall} -> {fused_doall}");

    let xs: Vec<f64> = (0..32).map(|i| (i as f64) - 7.5).collect();
    let inputs = Inputs::new()
        .set_int("n", 32)
        .set_array("xs", OwnedArray::real(vec![(1, 32)], xs));
    let a = execute(&plain, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let b = execute(
        &fused,
        &inputs,
        &ThreadPool::new(4),
        RuntimeOptions {
            check_writes: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(a.array("out").max_abs_diff(b.array("out")), 0.0);
}

#[test]
fn table_2d_wavefront_matches_oracle() {
    let comp = compile(
        programs::TABLE_2D,
        CompileOptions {
            hyperplane: Some(StorageMode::Full),
            ..Default::default()
        },
    )
    .unwrap();
    let inputs = Inputs::new().set_int("n", 12);
    let oracle = run_naive(&comp.module, &inputs).unwrap();
    let base = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let wave = execute_transformed(
        &comp,
        &inputs,
        &ThreadPool::new(4),
        RuntimeOptions::default(),
    )
    .unwrap();
    let c0 = oracle.scalar("corner").as_real();
    assert!((base.scalar("corner").as_real() - c0).abs() < 1e-12);
    assert!((wave.scalar("corner").as_real() - c0).abs() < 1e-12);
}

/// The eqfront translator produces modules that behave identically to the
/// hand-written Figure-1 module.
#[test]
fn eqfront_output_matches_handwritten() {
    let generated = ps_core::translate_equation(
        "A^{k}_{i,j} = (A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j} + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}) / 4",
        "Relaxation",
    )
    .unwrap();
    let gen_comp = compile(&generated, CompileOptions::default()).unwrap();
    let hand_comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
    assert_eq!(gen_comp.compact_flowchart(), hand_comp.compact_flowchart());

    let inputs = relaxation_inputs(6, 5);
    let a = execute(&gen_comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    let b = execute(&hand_comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
    assert_eq!(a.array("newA").max_abs_diff(b.array("newA")), 0.0);
}

/// Sweep: every built-in program that schedules also runs under the write
/// checker without violations.
#[test]
fn all_builtins_run_checked() {
    for (name, src) in programs::ALL {
        let comp = compile(src, CompileOptions::default()).unwrap();
        let inputs = match *name {
            "relaxation_v1" | "relaxation_v2" => relaxation_inputs(5, 4),
            "heat_1d" => Inputs::new()
                .set_int("M", 6)
                .set_int("maxK", 5)
                .set_real("alpha", 0.1)
                .set_array("u0", OwnedArray::real(vec![(0, 7)], vec![1.0; 8])),
            "recurrence_1d" => Inputs::new().set_real("rate", 0.1).set_int("n", 12),
            "pipeline" => Inputs::new()
                .set_int("n", 9)
                .set_array("xs", OwnedArray::real(vec![(1, 9)], vec![2.0; 9])),
            "gather" => Inputs::new()
                .set_int("n", 3)
                .set_array("xs", OwnedArray::real(vec![(1, 3)], vec![1.0, 2.0, 3.0]))
                .set_array("perm", OwnedArray::int(vec![(1, 3)], vec![2, 3, 1])),
            "table_2d" => Inputs::new().set_int("n", 6),
            "wave_1d" => Inputs::new()
                .set_int("M", 6)
                .set_int("maxK", 5)
                .set_real("c2", 0.3)
                .set_array("u0", OwnedArray::real(vec![(0, 7)], vec![0.5; 8])),
            other => panic!("unhandled builtin {other}"),
        };
        execute(
            &comp,
            &inputs,
            &Sequential,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
