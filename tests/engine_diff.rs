//! Differential property suite for the two evaluation engines.
//!
//! Random PS programs — 1-D recurrences with mixed real/int/bool bodies
//! (if-chains, short-circuit `and`/`or`, builtins, guarded `div`/`mod`,
//! dynamic subscripts, windowed and full storage) plus 2-D guarded grids —
//! run through both `Engine::Compiled` and `Engine::TreeWalk`, and through
//! the compiled engine on a thread pool. Outputs must be **bit-identical**:
//! the compiled tape preserves the tree-walker's operation order exactly,
//! so even NaN/infinity propagation must match to the last bit.
//!
//! Driven by the shrinking `ps_support::rng::check` harness: a failure is
//! greedily minimized (operator chains halved, then bisected) and reported
//! with the `Lcg` state that replays it.

use ps_core::{
    compile, execute, Compilation, CompileOptions, Engine, Inputs, Outputs, OwnedArray, Program,
    RuntimeOptions, Sequential, ThreadPool,
};
use ps_runtime::value::OwnedBuffer;
use ps_support::rng::{check, shrink_vec};
use ps_support::Lcg;

// ---- bit-exact output comparison ----

fn bits_of(v: ps_core::Value) -> (u8, u64) {
    match v {
        ps_core::Value::Int(i) => (0, i as u64),
        ps_core::Value::Real(r) => (1, r.to_bits()),
        ps_core::Value::Bool(b) => (2, b as u64),
    }
}

fn buffer_bits(b: &OwnedBuffer) -> Vec<u64> {
    match b {
        OwnedBuffer::Real(v) => v.iter().map(|x| x.to_bits()).collect(),
        OwnedBuffer::Int(v) => v.iter().map(|&x| x as u64).collect(),
        OwnedBuffer::Bool(v) => v.iter().map(|&x| x as u64).collect(),
    }
}

/// Compare two output sets bit-for-bit (NaN == NaN, +0.0 != -0.0).
fn assert_bits_eq(label: &str, a: &Outputs, b: &Outputs) -> Result<(), String> {
    if a.scalars.len() != b.scalars.len() || a.arrays.len() != b.arrays.len() {
        return Err(format!("{label}: output sets differ in shape"));
    }
    for (name, &va) in &a.scalars {
        let vb = b.scalars[name];
        if bits_of(va) != bits_of(vb) {
            return Err(format!("{label}: scalar {name}: {va:?} vs {vb:?}"));
        }
    }
    for (name, arr_a) in &a.arrays {
        let arr_b = &b.arrays[name];
        if arr_a.dims != arr_b.dims {
            return Err(format!("{label}: array {name}: dims differ"));
        }
        let (ba, bb) = (buffer_bits(&arr_a.data), buffer_bits(&arr_b.data));
        if let Some(i) = (0..ba.len()).find(|&i| ba[i] != bb[i]) {
            return Err(format!(
                "{label}: array {name} differs at flat index {i}: \
                 {:#x} vs {:#x}",
                ba[i], bb[i]
            ));
        }
    }
    Ok(())
}

/// Run `comp` under tree-walk/sequential, compiled/sequential and
/// compiled/pooled; all three must agree bit-for-bit.
fn run_all_engines(comp: &Compilation, inputs: &Inputs) -> Result<(), String> {
    let opts = |engine| RuntimeOptions {
        engine,
        ..Default::default()
    };
    let tree = execute(comp, inputs, &Sequential, opts(Engine::TreeWalk))
        .map_err(|e| format!("tree-walk: {e}"))?;
    let compiled = execute(comp, inputs, &Sequential, opts(Engine::Compiled))
        .map_err(|e| format!("compiled: {e}"))?;
    assert_bits_eq("compiled vs tree-walk", &compiled, &tree)?;
    let pool = ThreadPool::new(3);
    let par = execute(comp, inputs, &pool, opts(Engine::Compiled))
        .map_err(|e| format!("compiled/pool: {e}"))?;
    assert_bits_eq("compiled pooled vs sequential", &par, &compiled)
}

// ---- random 1-D recurrence programs ----

/// A linear chain genome: the real and int recurrence bodies are built by
/// folding `(op, leaf)` pairs onto a seed leaf, which keeps the case
/// shrinkable with `shrink_vec` while still exercising every instruction
/// kind the lowering emits.
#[derive(Clone, Debug)]
struct ChainProgram {
    /// Initialisation planes (1..=3); recursive offsets stay within them.
    init: i64,
    real_ops: Vec<(u8, u8)>,
    int_ops: Vec<(u8, u8)>,
    /// Export `a` in full (forces unwindowed storage); otherwise only
    /// `a[n]` is read and the planner may window `a`.
    export_a: bool,
}

const N: i64 = 12;

impl ChainProgram {
    fn real_leaf(&self, code: u8) -> String {
        let off = (code as i64 % self.init) + 1;
        match code % 7 {
            0 => "xs[K]".into(),
            1 => "xs[ks[K]]".into(),
            2 => format!("a[K-{off}]"),
            3 => format!("real(c[K-{off}])"),
            4 => "real(K)".into(),
            5 => format!("{}.25", code % 4),
            _ => "sqrt(abs(xs[K]))".into(),
        }
    }

    fn int_leaf(&self, code: u8) -> String {
        let off = (code as i64 % self.init) + 1;
        match code % 5 {
            0 => format!("c[K-{off}]"),
            1 => "ks[K]".into(),
            2 => "K".into(),
            3 => format!("{}", 1 + code % 9),
            _ => format!("abs(c[K-{off}] - 7)"),
        }
    }

    fn real_body(&self) -> String {
        let mut e = self.real_leaf(11);
        for &(op, leaf) in &self.real_ops {
            let l = self.real_leaf(leaf);
            e = match op % 8 {
                0 => format!("({e} + {l})"),
                1 => format!("({e} - {l})"),
                2 => format!("({e} * 0.5 + {l})"),
                3 => format!("({e} / (abs({l}) + 1.0))"),
                4 => format!("min({e}, {l})"),
                5 => format!("max({e}, {l})"),
                6 => format!("(if {l} < {e} then ({e} - {l}) else ({l} + 0.125))"),
                _ => format!(
                    "(if ({l} < {e}) and ((not ({e} < 0.0)) or ({l} > 1.0)) \
                     then {e} else {l})"
                ),
            };
        }
        e
    }

    fn int_body(&self) -> String {
        let mut e = self.int_leaf(3);
        for &(op, leaf) in &self.int_ops {
            let l = self.int_leaf(leaf);
            e = match op % 7 {
                0 => format!("({e} + {l})"),
                1 => format!("({e} - {l})"),
                2 => format!("({e} * {l})"),
                3 => format!("({e} div (abs({l}) + 1))"),
                4 => format!("({e} mod (abs({l}) + 1))"),
                5 => format!("min({e}, {l})"),
                _ => format!("(if ({e} mod 2) = 0 then ({e} + {l}) else max({e}, {l}))"),
            };
        }
        e
    }

    fn source(&self) -> String {
        let lo = self.init + 1;
        let mut eqs = String::new();
        for p in 1..=self.init {
            eqs.push_str(&format!("    a[{p}] = {p}.25;\n    c[{p}] = {p};\n"));
        }
        eqs.push_str(&format!("    a[K] = {};\n", self.real_body()));
        eqs.push_str(&format!("    c[K] = ({}) mod 97;\n", self.int_body()));
        let (z_result, z_eq) = if self.export_a {
            ("; z: array[1..n] of real", "    z = a;\n")
        } else {
            ("", "")
        };
        format!(
            "Gen: module (n: int; xs: array[1..n] of real;
                          ks: array[1..n] of int):
                 [y: real; t: bool; w: array[1..n] of int{z_result}];
             type K = {lo} .. n;
             var a: array [1 .. n] of real;
                 c: array [1 .. n] of int;
             define
             {eqs}{z_eq}
                 w = c;
                 y = a[n] + real(c[n]);
                 t = (a[n] < a[1]) or (c[n] = 0);
             end Gen;"
        )
    }

    fn inputs(&self) -> Inputs {
        let xs: Vec<f64> = (0..N)
            .map(|i| ((i * 37 + 11) % 23) as f64 * 0.375 - 3.0)
            .collect();
        let ks: Vec<i64> = (0..N).map(|i| (i * 7 + 3) % N + 1).collect();
        Inputs::new()
            .set_int("n", N)
            .set_array("xs", OwnedArray::real(vec![(1, N)], xs))
            .set_array("ks", OwnedArray::int(vec![(1, N)], ks))
    }
}

fn arb_chain(rng: &mut Lcg) -> ChainProgram {
    ChainProgram {
        init: rng.int(1, 3),
        real_ops: rng.vec_of(1, 6, |r| (r.int(0, 255) as u8, r.int(0, 255) as u8)),
        int_ops: rng.vec_of(1, 5, |r| (r.int(0, 255) as u8, r.int(0, 255) as u8)),
        export_a: rng.bool(),
    }
}

fn shrink_chain(p: &ChainProgram) -> Vec<ChainProgram> {
    let mut out = Vec::new();
    for cand in shrink_vec(&p.real_ops, 0) {
        out.push(ChainProgram {
            real_ops: cand,
            ..p.clone()
        });
    }
    for cand in shrink_vec(&p.int_ops, 0) {
        out.push(ChainProgram {
            int_ops: cand,
            ..p.clone()
        });
    }
    if p.export_a {
        out.push(ChainProgram {
            export_a: false,
            ..p.clone()
        });
    }
    out
}

#[test]
fn random_chains_are_bit_identical_across_engines() {
    check(0xd1ff_e4e1, 64, arb_chain, shrink_chain, |prog| {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
        run_all_engines(&comp, &prog.inputs()).map_err(|e| format!("{e}\n{src}"))
    });
}

// ---- random 2-D guarded grids ----

/// Jacobi-style grids with a random neighbour stencil behind the boundary
/// guard: exercises multi-dimensional strength reduction, the flattened
/// `DOALL I (DOALL J ...)` chain, and parameter constant folding.
#[derive(Clone, Debug)]
struct GridProgram {
    reads: Vec<(i64, i64)>,
}

impl GridProgram {
    fn source(&self) -> String {
        let terms: Vec<String> = self
            .reads
            .iter()
            .map(|(di, dj)| {
                let ix = |v: &str, d: i64| match d {
                    0 => v.to_string(),
                    d if d > 0 => format!("{v}+{d}"),
                    d => format!("{v}-{}", -d),
                };
                format!("g[K-1,{},{}]", ix("I", *di), ix("J", *dj))
            })
            .collect();
        format!(
            "Grid: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({sum}) / {count};
             end Grid;",
            sum = terms.join(" + "),
            count = terms.len()
        )
    }
}

// ---- compile-once / run-many ----

/// A random batch of parameter vectors for the fixed grid program: one
/// `Program` must serve all of them — sequentially *and* concurrently —
/// each run bit-identical to a fresh tree-walk execution.
#[derive(Clone, Debug)]
struct ParamBatch {
    vecs: Vec<(i64, i64)>,
}

fn grid_param_inputs(m: i64, maxk: i64) -> Inputs {
    let side = (m + 2) as usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| ((i * 17 + 5) % 29) as f64 * 0.375)
        .collect();
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array("init", OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data))
}

#[test]
fn one_program_many_runs_bit_identical() {
    let arb = |rng: &mut Lcg| ParamBatch {
        vecs: rng.vec_of(8, 12, |r| (r.int(2, 6), r.int(2, 6))),
    };
    let shrink = |p: &ParamBatch| {
        shrink_vec(&p.vecs, 8)
            .into_iter()
            .map(|vecs| ParamBatch { vecs })
            .collect()
    };
    // A fixed stencil: the randomness here is in the *parameter vectors*,
    // not the program — exactly the many-small-solves serving shape.
    let src = GridProgram {
        reads: vec![(0, 0), (-1, 0), (0, 1)],
    }
    .source();
    let comp = compile(&src, CompileOptions::default()).expect("grid compiles");
    check(0xd1ff_e4e3, 6, arb, shrink, |batch| {
        let prog = Program::compile(&comp, RuntimeOptions::default());
        // Fresh tree-walk oracle per vector.
        let oracles: Vec<Outputs> = batch
            .vecs
            .iter()
            .map(|&(m, maxk)| {
                execute(
                    &comp,
                    &grid_param_inputs(m, maxk),
                    &Sequential,
                    RuntimeOptions {
                        engine: Engine::TreeWalk,
                        ..Default::default()
                    },
                )
                .expect("oracle runs")
            })
            .collect();
        // Sequential pass: every vector twice (the second run of each
        // exercises the pooled-storage and specialization-cache paths).
        for round in 0..2 {
            for (ix, &(m, maxk)) in batch.vecs.iter().enumerate() {
                let out = prog
                    .run(&grid_param_inputs(m, maxk), &Sequential)
                    .map_err(|e| format!("program run: {e}"))?;
                assert_bits_eq(
                    &format!("program vs tree-walk (round {round}, vec {ix})"),
                    &out,
                    &oracles[ix],
                )?;
            }
        }
        // Concurrent pass: 4 threads share the artifact; each runs the
        // whole batch. A pooled executor inside one thread mixes in the
        // parallel DOALL path.
        let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let prog = &prog;
                    let oracles = &oracles;
                    let vecs = &batch.vecs;
                    scope.spawn(move || -> Result<(), String> {
                        let pool;
                        let executor: &dyn ps_core::Executor = if t == 0 {
                            pool = ThreadPool::new(2);
                            &pool
                        } else {
                            &Sequential
                        };
                        for (ix, &(m, maxk)) in vecs.iter().enumerate() {
                            let out = prog
                                .run(&grid_param_inputs(m, maxk), executor)
                                .map_err(|e| format!("thread {t}: {e}"))?;
                            assert_bits_eq(&format!("thread {t}, vec {ix}"), &out, &oracles[ix])?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            r?;
        }
        Ok(())
    });
}

#[test]
fn random_grids_are_bit_identical_across_engines() {
    let arb = |rng: &mut Lcg| GridProgram {
        reads: rng.vec_of(1, 4, |r| (r.int(-1, 1), r.int(-1, 1))),
    };
    let shrink = |p: &GridProgram| {
        shrink_vec(&p.reads, 1)
            .into_iter()
            .map(|reads| GridProgram { reads })
            .collect()
    };
    check(0xd1ff_e4e2, 24, arb, shrink, |prog| {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
        let m = 5i64;
        let side = (m + 2) as usize;
        let data: Vec<f64> = (0..side * side).map(|i| (i % 13) as f64 * 0.5).collect();
        let inputs = Inputs::new()
            .set_int("M", m)
            .set_int("maxK", 5)
            .set_array("init", OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data));
        run_all_engines(&comp, &inputs).map_err(|e| format!("{e}\n{src}"))
    });
}
