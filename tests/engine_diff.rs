//! Differential property suite for the two evaluation engines.
//!
//! Random PS programs — 1-D recurrences with mixed real/int/bool bodies
//! (if-chains, short-circuit `and`/`or`, builtins, guarded `div`/`mod`,
//! dynamic subscripts, windowed and full storage) plus 2-D guarded grids —
//! run through both `Engine::Compiled` and `Engine::TreeWalk`, and through
//! the compiled engine on a thread pool. Outputs must be **bit-identical**:
//! the compiled tape preserves the tree-walker's operation order exactly,
//! so even NaN/infinity propagation must match to the last bit.
//!
//! Driven by the shrinking `ps_support::rng::check` harness: a failure is
//! greedily minimized (operator chains halved, then bisected) and reported
//! with the `Lcg` state that replays it. The generators themselves are
//! shared with the analyzer property suite (see `generators.rs`).

#[path = "generators.rs"]
mod generators;

use generators::{arb_chain, arb_grid, assert_bits_eq, shrink_chain, shrink_grid, GridProgram};
use ps_core::{
    compile, execute, Compilation, CompileOptions, Engine, Inputs, Outputs, OwnedArray, Program,
    RuntimeOptions, Sequential, ThreadPool,
};
use ps_support::rng::{check, shrink_vec};
use ps_support::Lcg;

/// Run `comp` under tree-walk/sequential, compiled/sequential and
/// compiled/pooled; all three must agree bit-for-bit.
fn run_all_engines(comp: &Compilation, inputs: &Inputs) -> Result<(), String> {
    let opts = |engine| RuntimeOptions {
        engine,
        ..Default::default()
    };
    let tree = execute(comp, inputs, &Sequential, opts(Engine::TreeWalk))
        .map_err(|e| format!("tree-walk: {e}"))?;
    let compiled = execute(comp, inputs, &Sequential, opts(Engine::Compiled))
        .map_err(|e| format!("compiled: {e}"))?;
    assert_bits_eq("compiled vs tree-walk", &compiled, &tree)?;
    let pool = ThreadPool::new(3);
    let par = execute(comp, inputs, &pool, opts(Engine::Compiled))
        .map_err(|e| format!("compiled/pool: {e}"))?;
    assert_bits_eq("compiled pooled vs sequential", &par, &compiled)
}

#[test]
fn random_chains_are_bit_identical_across_engines() {
    check(0xd1ff_e4e1, 64, arb_chain, shrink_chain, |prog| {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
        run_all_engines(&comp, &prog.inputs()).map_err(|e| format!("{e}\n{src}"))
    });
}

// ---- compile-once / run-many ----

/// A random batch of parameter vectors for the fixed grid program: one
/// `Program` must serve all of them — sequentially *and* concurrently —
/// each run bit-identical to a fresh tree-walk execution.
#[derive(Clone, Debug)]
struct ParamBatch {
    vecs: Vec<(i64, i64)>,
}

fn grid_param_inputs(m: i64, maxk: i64) -> Inputs {
    let side = (m + 2) as usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| ((i * 17 + 5) % 29) as f64 * 0.375)
        .collect();
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array("init", OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data))
}

#[test]
fn one_program_many_runs_bit_identical() {
    let arb = |rng: &mut Lcg| ParamBatch {
        vecs: rng.vec_of(8, 12, |r| (r.int(2, 6), r.int(2, 6))),
    };
    let shrink = |p: &ParamBatch| {
        shrink_vec(&p.vecs, 8)
            .into_iter()
            .map(|vecs| ParamBatch { vecs })
            .collect()
    };
    // A fixed stencil: the randomness here is in the *parameter vectors*,
    // not the program — exactly the many-small-solves serving shape.
    let src = GridProgram {
        reads: vec![(0, 0), (-1, 0), (0, 1)],
    }
    .source();
    let comp = compile(&src, CompileOptions::default()).expect("grid compiles");
    check(0xd1ff_e4e3, 6, arb, shrink, |batch| {
        let prog = Program::compile(&comp, RuntimeOptions::default());
        // Fresh tree-walk oracle per vector.
        let oracles: Vec<Outputs> = batch
            .vecs
            .iter()
            .map(|&(m, maxk)| {
                execute(
                    &comp,
                    &grid_param_inputs(m, maxk),
                    &Sequential,
                    RuntimeOptions {
                        engine: Engine::TreeWalk,
                        ..Default::default()
                    },
                )
                .expect("oracle runs")
            })
            .collect();
        // Sequential pass: every vector twice (the second run of each
        // exercises the pooled-storage and specialization-cache paths).
        for round in 0..2 {
            for (ix, &(m, maxk)) in batch.vecs.iter().enumerate() {
                let out = prog
                    .run(&grid_param_inputs(m, maxk), &Sequential)
                    .map_err(|e| format!("program run: {e}"))?;
                assert_bits_eq(
                    &format!("program vs tree-walk (round {round}, vec {ix})"),
                    &out,
                    &oracles[ix],
                )?;
            }
        }
        // Concurrent pass: 4 threads share the artifact; each runs the
        // whole batch. A pooled executor inside one thread mixes in the
        // parallel DOALL path.
        let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let prog = &prog;
                    let oracles = &oracles;
                    let vecs = &batch.vecs;
                    scope.spawn(move || -> Result<(), String> {
                        let pool;
                        let executor: &dyn ps_core::Executor = if t == 0 {
                            pool = ThreadPool::new(2);
                            &pool
                        } else {
                            &Sequential
                        };
                        for (ix, &(m, maxk)) in vecs.iter().enumerate() {
                            let out = prog
                                .run(&grid_param_inputs(m, maxk), executor)
                                .map_err(|e| format!("thread {t}: {e}"))?;
                            assert_bits_eq(&format!("thread {t}, vec {ix}"), &out, &oracles[ix])?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            r?;
        }
        Ok(())
    });
}

#[test]
fn random_grids_are_bit_identical_across_engines() {
    check(0xd1ff_e4e2, 24, arb_grid, shrink_grid, |prog| {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
        run_all_engines(&comp, &generators::grid_inputs(5, 5)).map_err(|e| format!("{e}\n{src}"))
    });
}
