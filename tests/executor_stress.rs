//! Deterministic schedule-stress suite for the work-stealing executor.
//!
//! The work-stealing pool (see `ps_executor::pool`) publishes regions
//! into per-thread lanes of epoch-validated slots; idle workers steal
//! chunks off any live region's cursor, several regions can be in flight
//! at once, and a region spawned from inside a running chunk publishes
//! reentrantly instead of serializing inline. The safety argument leans
//! on globally-unique epochs, a store-load announce handshake at retire,
//! and an item-counted completion latch. This suite is the safety net:
//! thousands of mixed-size regions — empty, singleton, nested, stolen,
//! overlapping, and concurrently submitted from several threads and
//! several pools — each asserting that every iteration runs **exactly
//! once**.
//!
//! Driven by a seeded LCG so every run replays the same schedule shapes
//! (failing cases shrink to a minimal region vector via
//! `ps_support::rng::check`); sizes are drawn from mixes that
//! deliberately hammer the regimes the protocol distinguishes: inline
//! short-circuit, publication with idle workers, steal-heavy skew, and
//! multiple live regions.

use ps_core::{Executor, Sequential, ThreadPool};
use ps_support::rng::{check, shrink_vec, Lcg};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Draw a region size from a mix biased toward the dispatch-bound regimes:
/// empty, singleton, tiny, medium, and the occasional large region.
fn mixed_size(rng: &mut Lcg) -> i64 {
    match rng.index(10) {
        0 => 0,
        1 => 1,
        2..=5 => rng.int(2, 8),
        6..=8 => rng.int(9, 64),
        _ => rng.int(65, 700),
    }
}

/// Run `regions` regions on `ex` with sizes drawn from `rng`, asserting
/// exactly-once execution of every iteration. Returns total iterations.
fn drive_exactly_once(ex: &dyn Executor, rng: &mut Lcg, regions: usize, tag: &str) -> u64 {
    let mut total = 0u64;
    for r in 0..regions {
        let size = mixed_size(rng);
        let lo = rng.int(-100, 100);
        let hi = lo + size - 1; // size 0 => hi < lo (empty region)
        let hits: Vec<AtomicU32> = (0..size).map(|_| AtomicU32::new(0)).collect();
        ex.for_range(lo, hi, &|i| {
            hits[(i - lo) as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (k, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::Relaxed);
            assert_eq!(
                n, 1,
                "{tag}: region {r} (lo {lo}, size {size}): index {k} ran {n} times"
            );
        }
        total += size as u64;
    }
    total
}

/// 1200 mixed-size regions on pools of width 1..=4 plus `Sequential`:
/// every iteration of every region runs exactly once.
#[test]
fn mixed_regions_exactly_once() {
    let mut rng = Lcg::new(0x57e55_0);
    let seq_total = drive_exactly_once(&Sequential, &mut Lcg::new(0x57e55_0), 200, "seq");
    assert!(seq_total > 0);
    for threads in 1..=4usize {
        let pool = ThreadPool::new(threads);
        let total = drive_exactly_once(&pool, &mut rng, 250, &format!("par{threads}"));
        let stats = pool.stats();
        assert_eq!(
            stats.items, total,
            "par{threads}: stats must account every requested iteration"
        );
        assert!(stats.inline_regions <= stats.regions);
    }
}

/// Zero- and one-iteration regions by the thousand: empty regions are
/// no-ops, singletons run inline, and the pool survives the churn.
#[test]
fn degenerate_regions() {
    let pool = ThreadPool::new(3);
    let count = AtomicUsize::new(0);
    for r in 0..1000i64 {
        if r % 2 == 0 {
            // Empty: hi < lo, body must never run.
            pool.for_range(r, r - 1, &|_| {
                count.fetch_add(1000, Ordering::Relaxed);
            });
        } else {
            pool.for_range(r, r, &|i| {
                assert_eq!(i, r);
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    assert_eq!(count.load(Ordering::Relaxed), 500);
    let stats = pool.stats();
    assert_eq!(stats.regions, 500, "empty regions are not even counted");
    assert_eq!(stats.inline_regions, 500, "singletons all run inline");
    assert_eq!(stats.items, 500);
}

/// Nested `for_range` reentry: outer region bodies launch inner regions on
/// the same pool, from the submitting thread and from workers alike. The
/// inner regions publish into the spawning thread's lane (no
/// self-deadlock: the spawner drains its own region before waiting) and
/// still cover every (outer, inner) pair exactly once.
#[test]
fn nested_reentry_exactly_once() {
    let mut rng = Lcg::new(0x57e55_1);
    let pool = ThreadPool::new(4);
    for r in 0..150 {
        let outer = rng.int(2, 12);
        let inner = rng.int(0, 8);
        let hits: Vec<AtomicU32> = (0..outer * inner.max(1))
            .map(|_| AtomicU32::new(0))
            .collect();
        pool.for_range(0, outer - 1, &|o| {
            pool.for_range(0, inner - 1, &|i| {
                hits[(o * inner + i) as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        if inner > 0 {
            for (k, h) in hits.iter().enumerate() {
                let n = h.load(Ordering::Relaxed);
                assert_eq!(n, 1, "region {r}: pair {k} ran {n} times");
            }
        }
    }
}

/// Three levels of nesting, mixing `for_range` and `for_chunks`: each
/// level publishes reentrantly (lane depth permitting) and the count
/// still comes out exact.
#[test]
fn deep_nesting_exactly_once() {
    let pool = ThreadPool::new(3);
    let count = AtomicUsize::new(0);
    pool.for_range(0, 5, &|_| {
        pool.for_chunks(0, 5, &|lo, hi| {
            for _ in lo..hi {
                pool.for_range(0, 5, &|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(count.load(Ordering::Relaxed), 6 * 6 * 6);
}

/// Several pools live at once on separate threads, each drained through
/// the full mixed-size schedule. Pools share nothing but the process.
#[test]
fn concurrent_pools() {
    let handles: Vec<_> = (0..3usize)
        .map(|t| {
            std::thread::spawn(move || {
                let pool = ThreadPool::new(t + 2);
                let mut rng = Lcg::new(0x57e55_2 + t as u64);
                drive_exactly_once(&pool, &mut rng, 150, &format!("pool{t}"))
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("no stress thread may panic") > 0);
    }
}

/// One shared pool, four submitter threads racing 150 regions each into
/// disjoint slices of one hit array: each submitter publishes into its
/// own claimed lane, regions overlap freely, and nothing is lost or
/// doubled.
#[test]
fn concurrent_submitters_exactly_once() {
    const SUBMITTERS: usize = 4;
    const REGIONS: usize = 150;
    const SLICE: usize = 512;
    let pool = Arc::new(ThreadPool::new(3));
    let hits: Arc<Vec<AtomicU32>> =
        Arc::new((0..SUBMITTERS * SLICE).map(|_| AtomicU32::new(0)).collect());
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let pool = pool.clone();
            let hits = hits.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg::new(0x57e55_3 + t as u64);
                let base = (t * SLICE) as i64;
                let mut expected = vec![0u32; SLICE];
                for _ in 0..REGIONS {
                    let size = mixed_size(&mut rng).min(SLICE as i64);
                    let lo = base + rng.int(0, SLICE as i64 - size.max(1));
                    pool.for_range(lo, lo + size - 1, &|i| {
                        hits[i as usize].fetch_add(1, Ordering::Relaxed);
                    });
                    for k in 0..size {
                        expected[(lo - base + k) as usize] += 1;
                    }
                }
                expected
            })
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let expected = h.join().expect("submitter thread must not panic");
        for (k, want) in expected.iter().enumerate() {
            let got = hits[t * SLICE + k].load(Ordering::Relaxed);
            assert_eq!(got, *want, "submitter {t}, index {k}");
        }
    }
}

/// Panic recovery under churn: a panicking iteration aborts its region
/// (propagating to the submitter) without poisoning the pool — the very
/// next region still runs every iteration exactly once.
#[test]
fn panicking_regions_do_not_poison_the_pool() {
    let mut rng = Lcg::new(0x57e55_4);
    let pool = ThreadPool::new(3);
    for round in 0..25 {
        let size = rng.int(8, 80);
        let bad = rng.int(0, size - 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_range(0, size - 1, &|i| {
                if i == bad {
                    panic!("scheduled failure {round} at {i}");
                }
            });
        }));
        assert!(result.is_err(), "round {round}: panic must propagate");

        // Clean region right after: exactly-once still holds.
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.for_range(0, 63, &|i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "round {round}: pool unusable after panic"
        );
    }
}

/// The whole suite above at a fixed seed is the regression net; this case
/// additionally replays one seed on two identical pools and checks the
/// *stats* agree — the publication protocol must be deterministic in what
/// it requests, even though chunk claiming (and hence stealing) is racy.
#[test]
fn replayed_schedule_has_deterministic_accounting() {
    let run = || {
        let pool = ThreadPool::new(3);
        let mut rng = Lcg::new(0x57e55_5);
        let total = drive_exactly_once(&pool, &mut rng, 300, "replay");
        let s = pool.stats();
        (total, s.regions, s.items, s.inline_regions)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same requested schedule");
}

/// Like [`drive_exactly_once`] but returns a shrink-friendly `Err`
/// instead of panicking, so `rng::check` can minimize a failing size
/// vector.
fn run_sizes(ex: &dyn Executor, sizes: &[i64], tag: &str) -> Result<(), String> {
    for (r, &size) in sizes.iter().enumerate() {
        let hits: Vec<AtomicU32> = (0..size).map(|_| AtomicU32::new(0)).collect();
        ex.for_range(0, size - 1, &|i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (k, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::Relaxed);
            if n != 1 {
                return Err(format!(
                    "{tag}: region {r} (size {size}): index {k} ran {n} times"
                ));
            }
        }
    }
    Ok(())
}

/// Two submitters on one shared pool force their first regions to be
/// live *simultaneously* — each region's first iteration parks until the
/// other region has demonstrably started — then race a seeded mixed-size
/// tail. Exactly-once must hold throughout, and the pool's high-water
/// mark must have seen ≥ 2 live regions: the overlap the old
/// single-slot broadcast pool could never produce.
#[test]
fn overlapping_submitters_exactly_once() {
    check(
        0x57e55_6,
        4,
        |rng| rng.vec_of(4, 24, mixed_size),
        |sizes| shrink_vec(sizes, 1),
        |sizes| {
            let pool = Arc::new(ThreadPool::new(3));
            let started: Arc<[AtomicBool; 2]> =
                Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
            let handles: Vec<_> = (0..2usize)
                .map(|t| {
                    let pool = Arc::clone(&pool);
                    let started = Arc::clone(&started);
                    let sizes = sizes.to_vec();
                    std::thread::spawn(move || -> Result<(), String> {
                        // Rendezvous region: iteration 0 (its own chunk at
                        // this size) spins until the other submitter's
                        // region has started, proving both were in flight
                        // at once. Bounded so a regression fails loudly
                        // instead of hanging the suite.
                        let deadline = Instant::now() + Duration::from_secs(30);
                        pool.for_range(0, 7, &|i| {
                            if i == 0 {
                                started[t].store(true, Ordering::SeqCst);
                                while !started[1 - t].load(Ordering::SeqCst) {
                                    assert!(
                                        Instant::now() < deadline,
                                        "overlap rendezvous timed out"
                                    );
                                    std::thread::yield_now();
                                }
                            }
                        });
                        run_sizes(&*pool, &sizes, &format!("submitter {t}"))
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter thread must not panic")?;
            }
            let live = pool.stats().max_live_regions;
            if live < 2 {
                return Err(format!(
                    "rendezvous regions completed but max_live_regions is {live}"
                ));
            }
            Ok(())
        },
    );
}

/// Seeded nested-spawn shapes: outer regions whose bodies spawn inner
/// regions on the same pool. Every (outer, inner) pair runs exactly
/// once, and every publishable inner region (size ≥ 2) is accounted as a
/// *nested* publication — none may fall back to serial inlining while
/// the lane stack has room.
#[test]
fn nested_spawn_publishes_under_check() {
    check(
        0x57e55_7,
        4,
        |rng| rng.vec_of(3, 12, |rng| (rng.int(2, 10), rng.int(0, 8))),
        |shapes| shrink_vec(shapes, 1),
        |shapes| {
            let pool = ThreadPool::new(3);
            for (r, &(outer, inner)) in shapes.iter().enumerate() {
                let hits: Vec<AtomicU32> = (0..outer * inner.max(1))
                    .map(|_| AtomicU32::new(0))
                    .collect();
                pool.for_range(0, outer - 1, &|o| {
                    pool.for_range(0, inner - 1, &|i| {
                        hits[(o * inner + i) as usize].fetch_add(1, Ordering::Relaxed);
                    });
                });
                if inner > 0 {
                    for (k, h) in hits.iter().enumerate() {
                        let n = h.load(Ordering::Relaxed);
                        if n != 1 {
                            return Err(format!(
                                "shape {r} ({outer}×{inner}): pair {k} ran {n} times"
                            ));
                        }
                    }
                }
            }
            // Inner spawns always find a lane (depth 2 ≤ LANE_DEPTH), so
            // the nested count is schedule-independent: one per outer
            // iteration whose inner region is big enough to publish.
            let want: u64 = shapes
                .iter()
                .filter(|&&(_, inner)| inner >= 2)
                .map(|&(outer, _)| outer as u64)
                .sum();
            let s = pool.stats();
            if s.nested_regions != want {
                return Err(format!(
                    "nested_regions {} != publishable inner regions {want}",
                    s.nested_regions
                ));
            }
            Ok(())
        },
    );
}

/// Steal-heavy skew: occasional huge regions amid swarms of tiny ones,
/// raced by two submitters sharing a 4-thread pool. Huge regions are
/// where thieves concentrate; exactly-once and the items accounting must
/// be indifferent to who claimed each chunk (the steal *count* itself is
/// schedule-dependent and deliberately not asserted).
#[test]
fn steal_heavy_skewed_mix_exactly_once() {
    check(
        0x57e55_8,
        4,
        |rng| {
            rng.vec_of(6, 20, |rng| {
                if rng.index(4) == 0 {
                    rng.int(1500, 6000)
                } else {
                    rng.int(0, 8)
                }
            })
        },
        |sizes| shrink_vec(sizes, 1),
        |sizes| {
            let pool = Arc::new(ThreadPool::new(4));
            let handles: Vec<_> = (0..2usize)
                .map(|t| {
                    let pool = Arc::clone(&pool);
                    let sizes = sizes.to_vec();
                    std::thread::spawn(move || run_sizes(&*pool, &sizes, &format!("skew {t}")))
                })
                .collect();
            for h in handles {
                h.join().expect("skew thread must not panic")?;
            }
            let want_items: u64 = 2 * sizes.iter().map(|&s| s as u64).sum::<u64>();
            let s = pool.stats();
            if s.items != want_items {
                return Err(format!("items {} != requested {want_items}", s.items));
            }
            Ok(())
        },
    );
}
