//! Figure-exact integration tests: every figure of the paper is reproduced
//! and asserted structurally.

use ps_core::{compile, programs, CompileOptions, StorageMode};

fn v1() -> ps_core::Compilation {
    compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap()
}

fn v2_windowed() -> ps_core::Compilation {
    compile(
        programs::RELAXATION_V2,
        CompileOptions {
            hyperplane: Some(StorageMode::Windowed),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Figure 1: the Relaxation module parses, type-checks, and round-trips
/// through the pretty-printer.
#[test]
fn fig1_roundtrip() {
    let sink = ps_support::DiagnosticSink::new();
    let toks = ps_lang::lexer::lex(programs::RELAXATION_V1, &sink);
    let prog = ps_lang::parser::parse_program(&toks, &sink);
    assert!(!sink.has_errors());
    let printed = ps_lang::print::print_module(&prog.modules[0]);

    // Re-parse and re-print: fixed point.
    let sink2 = ps_support::DiagnosticSink::new();
    let prog2 = ps_lang::parser::parse_program(&ps_lang::lexer::lex(&printed, &sink2), &sink2);
    assert!(!sink2.has_errors(), "{printed}");
    assert_eq!(printed, ps_lang::print::print_module(&prog2.modules[0]));

    // And the printed text still checks.
    ps_lang::frontend(&printed).expect("printed module type-checks");
}

/// Figure 2: edge-label attributes — the three subscript expression forms
/// plus offsets are all observable on the Relaxation graph.
#[test]
fn fig2_edge_labels() {
    use ps_depgraph::SubscriptForm;
    let comp = v1();
    let m = &comp.module;
    let dg = &comp.depgraph;
    let a = dg.data_node(m.data_by_name("A").unwrap());
    let eq3 = dg.eq_node(m.equation_by_label("eq.3").unwrap());
    let mut saw_identity = false;
    let mut saw_offset = false;
    let mut saw_other = false;
    for e in dg.read_edges_from(a, eq3) {
        for l in &dg.graph.edge(e).labels {
            match l.form {
                SubscriptForm::Identity => saw_identity = true,
                SubscriptForm::OffsetBack => {
                    saw_offset = true;
                    assert_eq!(l.back_offset(), Some(1), "K-1 has offset amount 1");
                }
                SubscriptForm::Other => saw_other = true,
                SubscriptForm::Constant => {}
            }
        }
    }
    assert!(saw_identity && saw_offset && saw_other);
}

/// Figure 3: dependency-graph structure for the Relaxation module.
#[test]
fn fig3_depgraph_structure() {
    let comp = v1();
    let s = ps_depgraph::stats::stats(&comp.depgraph);
    assert_eq!(s.data_nodes, 5, "InitialA, M, maxK, newA, A");
    assert_eq!(s.equation_nodes, 3);
    assert_eq!(s.read_edges, 8, "InitialA->eq1, A->eq2, 5x A->eq3, M->eq3");
    assert_eq!(s.def_edges, 3);
    assert_eq!(s.bound_edges, 4, "M->InitialA/A/newA, maxK->A");
    assert_eq!(s.offset_back_edges, 5, "all five A references use K-1");

    // The DOT rendering carries the labelled edges.
    let dot = ps_depgraph::dot::depgraph_dot(&comp.module, &comp.depgraph);
    assert!(dot.contains("label=\"K-1,I,J\""), "{dot}");
    assert!(dot.contains("label=\"K-1,I,J+1\""), "{dot}");
}

/// Figure 5: seven MSCCs; data components null; the recursive component is
/// {A, eq.3}; per-component flowcharts match the table.
#[test]
fn fig5_component_table() {
    let comp = v1();
    let comps = &comp.schedule.components;
    assert_eq!(comps.len(), 7);

    let find = |name: &str| {
        comps
            .iter()
            .find(|c| c.nodes.len() == 1 && c.nodes[0] == name)
            .unwrap_or_else(|| panic!("no singleton component {name}"))
    };
    for data in ["InitialA", "M", "maxK", "newA"] {
        assert_eq!(find(data).flowchart, "null");
    }
    assert_eq!(find("eq.1").flowchart, "DOALL I (DOALL J (eq.1))");
    assert_eq!(find("eq.2").flowchart, "DOALL I (DOALL J (eq.2))");
    let multi = comps.iter().find(|c| c.nodes.len() == 2).expect("MSCC");
    let mut nodes = multi.nodes.clone();
    nodes.sort();
    assert_eq!(nodes, vec!["A", "eq.3"]);
    assert_eq!(multi.flowchart, "DO K (DOALL I (DOALL J (eq.3)))");
}

/// Figure 6: the complete flowchart for Relaxation (version 1), with the
/// virtual window of two on dimension K of A.
#[test]
fn fig6_flowchart_and_window() {
    let comp = v1();
    let expected = "\
DOALL I (
  DOALL J (
    eq.1
  )
)
DO K (
  DOALL I (
    DOALL J (
      eq.3
    )
  )
)
DOALL I (
  DOALL J (
    eq.2
  )
)
";
    assert_eq!(
        ps_scheduler::render::render_flowchart(&comp.module, &comp.schedule.flowchart),
        expected
    );
    let a = comp.module.data_by_name("A").unwrap();
    assert_eq!(comp.schedule.memory.window(a, 0), Some(2));
    assert_eq!(comp.schedule.memory.window(a, 1), None);
    assert_eq!(comp.schedule.memory.window(a, 2), None);
}

/// Figure 7: the revised eq.3 forces all three loops iterative; the window
/// analysis still gives two planes.
#[test]
fn fig7_revised_eq3() {
    let comp = compile(programs::RELAXATION_V2, CompileOptions::default()).unwrap();
    assert_eq!(
        comp.compact_flowchart(),
        "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); DOALL I (DOALL J (eq.2))"
    );
    let a = comp.module.data_by_name("A").unwrap();
    assert_eq!(comp.schedule.memory.window(a, 0), Some(2));
}

/// Section 4: the full derivation — inequalities, pi = (2,1,1), the paper's
/// T and its inverse, the transformed reference offsets, window 3, and a
/// schedule with the Figure-6 loop structure.
#[test]
fn sec4_hyperplane_derivation() {
    let comp = v2_windowed();
    let t = comp.transformed.as_ref().unwrap();
    let r = &t.result;

    // Five dependence inequalities exactly as printed in the paper.
    let ineqs = ps_hyperplane::solve::render_inequalities(&r.dep_vectors);
    for expected in ["a > 0", "b > 0", "c > 0", "a > c", "a > b"] {
        assert!(ineqs.contains(&expected.to_string()), "{ineqs:?}");
    }
    assert_eq!(r.pi, vec![2, 1, 1], "t = 2K + I + J");

    // K' = 2K+I+J, I' = K, J' = I.
    assert_eq!(r.t_mat.row(0), &[2, 1, 1]);
    assert_eq!(r.t_mat.row(1), &[1, 0, 0]);
    assert_eq!(r.t_mat.row(2), &[0, 1, 0]);
    // K = I', I = J', J = K' - 2I' - J'.
    assert_eq!(r.t_inv.row(0), &[0, 1, 0]);
    assert_eq!(r.t_inv.row(1), &[0, 0, 1]);
    assert_eq!(r.t_inv.row(2), &[1, -2, -1]);

    // The rewritten recurrence's references (as transformed dependences).
    for d in [
        vec![1, 0, 0],
        vec![1, 0, 1],
        vec![1, 1, 0],
        vec![1, 1, -1],
        vec![2, 1, 0],
    ] {
        assert!(r.transformed_deps.contains(&d), "{:?}", r.transformed_deps);
    }

    // Window 3: "we can allocate an array 3 x maxK x M".
    assert_eq!(r.window, 3);
    assert_eq!(t.schedule.memory.window(r.new_array, 0), Some(3));

    // "the schedule is identical to that of Figure 6" (outer DO, inner
    // DOALLs over the recurrence).
    let fc = comp.transformed_flowchart().unwrap();
    assert!(
        fc.contains("DO K' (DOALL I' (DOALL J' (eq.3)); DRAIN K')"),
        "{fc}"
    );
}

/// The transformed equation literally contains the paper's rewritten
/// references (`A'[K'-2, I'-1, J']` etc.), checked via the HIR printer.
#[test]
fn sec4_rewritten_equation_text() {
    let comp = v2_windowed();
    let t = comp.transformed.as_ref().unwrap();
    let m = &t.result.module;
    let eq = m
        .equation_by_label(&t.result.merged_label)
        .expect("merged equation");
    let text = ps_lang::print::print_hexpr(m, &m.equations[eq], &m.equations[eq].rhs);
    for expected in [
        "A'[K'-2, I'-1, J']",
        "A'[K'-1, I', J']",
        "A'[K'-1, I', J'-1]",
        "A'[K'-1, I'-1, J']",
        "A'[K'-1, I'-1, J'+1]",
        "InitialA[J'",
    ] {
        assert!(text.contains(expected), "missing `{expected}` in:\n{text}");
    }
}

/// Memory accounting from the paper: window-2 storage is 2*(M+2)^2 instead
/// of maxK*(M+2)^2; the transformed window-3 storage is 3*maxK*(M+2).
#[test]
fn sec4_memory_accounting() {
    use ps_support::{FxHashMap, Symbol};
    let comp = v2_windowed();
    let mut params = FxHashMap::default();
    params.insert(Symbol::intern("M"), 64i64);
    params.insert(Symbol::intern("maxK"), 100i64);

    let a = comp.module.data_by_name("A").unwrap();
    let side = 66u64; // M + 2
    assert_eq!(
        ps_scheduler::MemoryPlan::full_elements(&comp.module, a, &params),
        Some(100 * side * side)
    );
    assert_eq!(
        comp.schedule
            .memory
            .alloc_elements(&comp.module, a, &params),
        Some(2 * side * side)
    );

    let t = comp.transformed.as_ref().unwrap();
    let ap = t.result.new_array;
    assert_eq!(
        t.schedule
            .memory
            .alloc_elements(&t.result.module, ap, &params),
        Some(3 * 100 * side),
        "3 planes x maxK x (M+2)"
    );
}

/// The schedules of both versions and the transformed program validate
/// under the conservative replay checker.
#[test]
fn all_schedules_validate() {
    use ps_support::{FxHashMap, Symbol};
    let mut params = FxHashMap::default();
    params.insert(Symbol::intern("M"), 5i64);
    params.insert(Symbol::intern("maxK"), 6i64);

    let c1 = v1();
    ps_core::validate_flowchart(&c1.module, &c1.schedule.flowchart, &params).unwrap();

    let c2 = v2_windowed();
    ps_core::validate_flowchart(&c2.module, &c2.schedule.flowchart, &params).unwrap();
    let t = c2.transformed.as_ref().unwrap();
    ps_core::validate_flowchart(&t.result.module, &t.schedule.flowchart, &params).unwrap();
}
