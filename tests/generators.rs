//! Shared random-program generators and bit-exact comparison helpers for
//! the property suites (`engine_diff`, `analyzer_prop`).
//!
//! Included per-suite via `#[path = "generators.rs"] mod generators;` —
//! each integration test is its own crate, so this is the idiomatic way
//! to share test-only code without publishing it from a library.

#![allow(dead_code)]

use ps_core::{Inputs, Outputs, OwnedArray};
use ps_runtime::value::OwnedBuffer;
use ps_support::rng::shrink_vec;
use ps_support::Lcg;

// ---- bit-exact output comparison ----

pub fn bits_of(v: ps_core::Value) -> (u8, u64) {
    match v {
        ps_core::Value::Int(i) => (0, i as u64),
        ps_core::Value::Real(r) => (1, r.to_bits()),
        ps_core::Value::Bool(b) => (2, b as u64),
    }
}

pub fn buffer_bits(b: &OwnedBuffer) -> Vec<u64> {
    match b {
        OwnedBuffer::Real(v) => v.iter().map(|x| x.to_bits()).collect(),
        OwnedBuffer::Int(v) => v.iter().map(|&x| x as u64).collect(),
        OwnedBuffer::Bool(v) => v.iter().map(|&x| x as u64).collect(),
    }
}

/// Compare two output sets bit-for-bit (NaN == NaN, +0.0 != -0.0).
pub fn assert_bits_eq(label: &str, a: &Outputs, b: &Outputs) -> Result<(), String> {
    if a.scalars.len() != b.scalars.len() || a.arrays.len() != b.arrays.len() {
        return Err(format!("{label}: output sets differ in shape"));
    }
    for (name, &va) in &a.scalars {
        let vb = b.scalars[name];
        if bits_of(va) != bits_of(vb) {
            return Err(format!("{label}: scalar {name}: {va:?} vs {vb:?}"));
        }
    }
    for (name, arr_a) in &a.arrays {
        let arr_b = &b.arrays[name];
        if arr_a.dims != arr_b.dims {
            return Err(format!("{label}: array {name}: dims differ"));
        }
        let (ba, bb) = (buffer_bits(&arr_a.data), buffer_bits(&arr_b.data));
        if let Some(i) = (0..ba.len()).find(|&i| ba[i] != bb[i]) {
            return Err(format!(
                "{label}: array {name} differs at flat index {i}: \
                 {:#x} vs {:#x}",
                ba[i], bb[i]
            ));
        }
    }
    Ok(())
}

// ---- random 1-D recurrence programs ----

/// A linear chain genome: the real and int recurrence bodies are built by
/// folding `(op, leaf)` pairs onto a seed leaf, which keeps the case
/// shrinkable with `shrink_vec` while still exercising every instruction
/// kind the lowering emits.
#[derive(Clone, Debug)]
pub struct ChainProgram {
    /// Initialisation planes (1..=3); recursive offsets stay within them.
    init: i64,
    real_ops: Vec<(u8, u8)>,
    int_ops: Vec<(u8, u8)>,
    /// Export `a` in full (forces unwindowed storage); otherwise only
    /// `a[n]` is read and the planner may window `a`.
    export_a: bool,
}

pub const N: i64 = 12;

impl ChainProgram {
    fn real_leaf(&self, code: u8) -> String {
        let off = (code as i64 % self.init) + 1;
        match code % 7 {
            0 => "xs[K]".into(),
            1 => "xs[ks[K]]".into(),
            2 => format!("a[K-{off}]"),
            3 => format!("real(c[K-{off}])"),
            4 => "real(K)".into(),
            5 => format!("{}.25", code % 4),
            _ => "sqrt(abs(xs[K]))".into(),
        }
    }

    fn int_leaf(&self, code: u8) -> String {
        let off = (code as i64 % self.init) + 1;
        match code % 5 {
            0 => format!("c[K-{off}]"),
            1 => "ks[K]".into(),
            2 => "K".into(),
            3 => format!("{}", 1 + code % 9),
            _ => format!("abs(c[K-{off}] - 7)"),
        }
    }

    fn real_body(&self) -> String {
        let mut e = self.real_leaf(11);
        for &(op, leaf) in &self.real_ops {
            let l = self.real_leaf(leaf);
            e = match op % 8 {
                0 => format!("({e} + {l})"),
                1 => format!("({e} - {l})"),
                2 => format!("({e} * 0.5 + {l})"),
                3 => format!("({e} / (abs({l}) + 1.0))"),
                4 => format!("min({e}, {l})"),
                5 => format!("max({e}, {l})"),
                6 => format!("(if {l} < {e} then ({e} - {l}) else ({l} + 0.125))"),
                _ => format!(
                    "(if ({l} < {e}) and ((not ({e} < 0.0)) or ({l} > 1.0)) \
                     then {e} else {l})"
                ),
            };
        }
        e
    }

    fn int_body(&self) -> String {
        let mut e = self.int_leaf(3);
        for &(op, leaf) in &self.int_ops {
            let l = self.int_leaf(leaf);
            e = match op % 7 {
                0 => format!("({e} + {l})"),
                1 => format!("({e} - {l})"),
                2 => format!("({e} * {l})"),
                3 => format!("({e} div (abs({l}) + 1))"),
                4 => format!("({e} mod (abs({l}) + 1))"),
                5 => format!("min({e}, {l})"),
                _ => format!("(if ({e} mod 2) = 0 then ({e} + {l}) else max({e}, {l}))"),
            };
        }
        e
    }

    pub fn source(&self) -> String {
        let lo = self.init + 1;
        let mut eqs = String::new();
        for p in 1..=self.init {
            eqs.push_str(&format!("    a[{p}] = {p}.25;\n    c[{p}] = {p};\n"));
        }
        eqs.push_str(&format!("    a[K] = {};\n", self.real_body()));
        eqs.push_str(&format!("    c[K] = ({}) mod 97;\n", self.int_body()));
        let (z_result, z_eq) = if self.export_a {
            ("; z: array[1..n] of real", "    z = a;\n")
        } else {
            ("", "")
        };
        format!(
            "Gen: module (n: int; xs: array[1..n] of real;
                          ks: array[1..n] of int):
                 [y: real; t: bool; w: array[1..n] of int{z_result}];
             type K = {lo} .. n;
             var a: array [1 .. n] of real;
                 c: array [1 .. n] of int;
             define
             {eqs}{z_eq}
                 w = c;
                 y = a[n] + real(c[n]);
                 t = (a[n] < a[1]) or (c[n] = 0);
             end Gen;"
        )
    }

    pub fn inputs(&self) -> Inputs {
        let xs: Vec<f64> = (0..N)
            .map(|i| ((i * 37 + 11) % 23) as f64 * 0.375 - 3.0)
            .collect();
        let ks: Vec<i64> = (0..N).map(|i| (i * 7 + 3) % N + 1).collect();
        Inputs::new()
            .set_int("n", N)
            .set_array("xs", OwnedArray::real(vec![(1, N)], xs))
            .set_array("ks", OwnedArray::int(vec![(1, N)], ks))
    }
}

pub fn arb_chain(rng: &mut Lcg) -> ChainProgram {
    ChainProgram {
        init: rng.int(1, 3),
        real_ops: rng.vec_of(1, 6, |r| (r.int(0, 255) as u8, r.int(0, 255) as u8)),
        int_ops: rng.vec_of(1, 5, |r| (r.int(0, 255) as u8, r.int(0, 255) as u8)),
        export_a: rng.bool(),
    }
}

pub fn shrink_chain(p: &ChainProgram) -> Vec<ChainProgram> {
    let mut out = Vec::new();
    for cand in shrink_vec(&p.real_ops, 0) {
        out.push(ChainProgram {
            real_ops: cand,
            ..p.clone()
        });
    }
    for cand in shrink_vec(&p.int_ops, 0) {
        out.push(ChainProgram {
            int_ops: cand,
            ..p.clone()
        });
    }
    if p.export_a {
        out.push(ChainProgram {
            export_a: false,
            ..p.clone()
        });
    }
    out
}

// ---- random 2-D guarded grids ----

/// Jacobi-style grids with a random neighbour stencil behind the boundary
/// guard: exercises multi-dimensional strength reduction, the flattened
/// `DOALL I (DOALL J ...)` chain, and parameter constant folding.
#[derive(Clone, Debug)]
pub struct GridProgram {
    pub reads: Vec<(i64, i64)>,
}

impl GridProgram {
    pub fn source(&self) -> String {
        let terms: Vec<String> = self
            .reads
            .iter()
            .map(|(di, dj)| {
                let ix = |v: &str, d: i64| match d {
                    0 => v.to_string(),
                    d if d > 0 => format!("{v}+{d}"),
                    d => format!("{v}-{}", -d),
                };
                format!("g[K-1,{},{}]", ix("I", *di), ix("J", *dj))
            })
            .collect();
        format!(
            "Grid: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({sum}) / {count};
             end Grid;",
            sum = terms.join(" + "),
            count = terms.len()
        )
    }
}

pub fn arb_grid(rng: &mut Lcg) -> GridProgram {
    GridProgram {
        reads: rng.vec_of(1, 4, |r| (r.int(-1, 1), r.int(-1, 1))),
    }
}

pub fn shrink_grid(p: &GridProgram) -> Vec<GridProgram> {
    shrink_vec(&p.reads, 1)
        .into_iter()
        .map(|reads| GridProgram { reads })
        .collect()
}

/// Deterministic inputs for a [`GridProgram`] of the given size.
pub fn grid_inputs(m: i64, maxk: i64) -> Inputs {
    let side = (m + 2) as usize;
    let data: Vec<f64> = (0..side * side).map(|i| (i % 13) as f64 * 0.5).collect();
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array("init", OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data))
}
