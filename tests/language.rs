//! Language-level integration tests: a corpus of PS snippets exercising
//! parser and checker acceptance/rejection behaviour through the public
//! pipeline.

use ps_core::{compile, CompileError, CompileOptions};

fn ok(src: &str) {
    compile(src, CompileOptions::default())
        .unwrap_or_else(|e| panic!("expected success:\n{src}\n{e}"));
}

fn frontend_err(src: &str, code: &str) {
    match compile(src, CompileOptions::default()) {
        Err(CompileError::Frontend(msg)) => {
            assert!(msg.contains(code), "expected {code} in:\n{msg}")
        }
        Err(other) => panic!("expected frontend error {code}, got {other}"),
        Ok(_) => panic!("expected frontend error {code}, but compiled:\n{src}"),
    }
}

fn schedule_err(src: &str) {
    match compile(src, CompileOptions::default()) {
        Err(CompileError::Schedule(_)) => {}
        Err(other) => panic!("expected schedule error, got {other}"),
        Ok(_) => panic!("expected schedule error, but compiled:\n{src}"),
    }
}

#[test]
fn accepts_figure1_variants() {
    // Comment styles, pragma comments, nested comments, odd whitespace.
    ok("
        (*$m+v+x+t-*)
        T: module (x: int): [y: int];
        define (* outer (* inner *) comment *) y = x;
        end T;
    ");
    // Multiple declarations per line, `;`-separated results.
    ok("
        T: module (a, b: int): [y: int; z: int];
        define y = a + b; z = a - b;
        end T;
    ");
    // elsif chains and boolean algebra.
    ok("
        T: module (x: int): [y: int];
        define y = if x < 0 and not (x = -1) then 0
                   elsif x = 0 or x = 1 then 1
                   else x;
        end T;
    ");
}

#[test]
fn accepts_numeric_forms() {
    ok("T: module (): [y: real]; define y = 1.5e3 + 2.0E-2 + 0.5 + 1e2; end T;");
    ok("T: module (): [y: int]; define y = -3 + 7 div 2 mod 3; end T;");
}

#[test]
fn accepts_subrange_shapes() {
    // Parenthesized bounds, negative bounds, nested arrays of 3 levels.
    ok("
        T: module (n: int): [y: real];
        type R = (0-5) .. (n*2+1);
        var a: array [R] of real;
        define a[R] = 1.0; y = a[0];
        end T;
    ");
    ok("
        T: module (n: int): [y: real];
        type I = 1 .. n;
        var c: array [I] of array [I] of array [I] of real;
        define c[I] = 0.5; y = c[1,1,1];
        end T;
    ");
}

#[test]
fn rejects_syntax_errors() {
    frontend_err("T: module (x: int): [y: int]; define y = ; end T;", "E0116");
    frontend_err("T: module (x int): [y: int]; define y = 1; end T;", "E0110");
    frontend_err(
        "T: module (x: int): [y: int]; define y = 1; end Z;",
        "E0114",
    );
    frontend_err(
        "T: module (x: int): [y: int]; define y = (1; end T;",
        "E0110",
    );
}

#[test]
fn rejects_lexical_errors() {
    frontend_err("T: module (): [y: int]; define y = 1 ? 2; end T;", "E0101");
    frontend_err("T: module (): [y: int]; define y = 1; (* no close", "E0102");
}

#[test]
fn rejects_semantic_errors() {
    // Unknown type.
    frontend_err(
        "T: module (x: quux): [y: int]; define y = 1; end T;",
        "E0207",
    );
    // Duplicate declaration.
    frontend_err(
        "T: module (x: int; x: int): [y: int]; define y = x; end T;",
        "E0201",
    );
    // Array dimension must be a subrange.
    frontend_err(
        "T: module (): [y: int]; var a: array [int] of int; define a = 0; y = 1; end T;",
        "E0210",
    );
    // Subscripting a scalar.
    frontend_err(
        "T: module (x: int): [y: int]; define y = x[1]; end T;",
        "E0251",
    );
    // Too many subscripts.
    frontend_err(
        "T: module (b: array[1..3] of real): [y: real]; define y = b[1,2]; end T;",
        "E0252",
    );
    // Unknown function (cross-module calls unsupported).
    frontend_err(
        "T: module (x: int): [y: int]; define y = frobnicate(x); end T;",
        "E0255",
    );
    // Wrong builtin arity.
    frontend_err(
        "T: module (x: real): [y: real]; define y = min(x); end T;",
        "E0256",
    );
}

#[test]
fn rejects_definition_errors() {
    frontend_err("T: module (): [y: int]; define end T;", "E0270");
    frontend_err(
        "T: module (): [y: int]; define y = 1; y = 2; end T;",
        "E0271",
    );
    frontend_err(
        "T: module (x: int): [y: int]; define x = 1; y = 2; end T;",
        "E0221",
    );
    // Overlapping array regions.
    frontend_err(
        "T: module (n: int): [y: int];
         type I = 1 .. 5;
         var a: array [I] of int;
         define a[I] = 0; a[3] = 1; y = a[1];
         end T;",
        "E0272",
    );
}

#[test]
fn rejects_unschedulable_systems() {
    // The paper's footnote example: inconsistent positions.
    schedule_err(
        "T: module (n: int): [y: real];
         type I, J = 1 .. n;
         var a: array [I, J] of real;
         define
            a[I, J] = if (I = 1) or (J = 1) then 0.5 else a[I, J-1] + a[J, I];
            y = a[n, n];
         end T;",
    );
    // Mutually recursive arrays with identity references at every dim.
    schedule_err(
        "T: module (n: int): [y: real];
         type I = 1 .. n;
         var a, b: array [I] of real;
         define
            a[I] = b[I] + 1.0;
            b[I] = a[I] * 2.0;
            y = a[1];
         end T;",
    );
}

#[test]
fn mutually_recursive_arrays_with_offsets_schedule() {
    // a and b feed each other across iterations: one MSCC, iterative loop,
    // both equations inside.
    let comp = compile(
        "T: module (n: int): [y: real];
         type K = 2 .. n;
         var a, b: array [1 .. n] of real;
         define
            a[1] = 1.0;
            b[1] = 2.0;
            a[K] = b[K-1] + 1.0;
            b[K] = a[K-1] * 2.0;
            y = a[n] + b[n];
         end T;",
        CompileOptions::default(),
    )
    .unwrap();
    let fc = comp.compact_flowchart();
    assert!(
        fc.contains("DO K (eq.3; eq.4)") || fc.contains("DO K (eq.4; eq.3)"),
        "{fc}"
    );
    // Both arrays windowed to 2 planes.
    let a = comp.module.data_by_name("a").unwrap();
    let b = comp.module.data_by_name("b").unwrap();
    assert_eq!(comp.schedule.memory.window(a, 0), Some(2));
    assert_eq!(comp.schedule.memory.window(b, 0), Some(2));
}

#[test]
fn warning_cases_still_compile() {
    // Unprovable disjointness warns but compiles.
    ok("
        T: module (n, m: int): [y: int];
        var a: array [1 .. 10] of int;
        define
            a[n] = 1;
            a[m] = 2;
            y = a[1];
        end T;
    ");
}

#[test]
fn enum_record_char_round_trip() {
    ok("
        T: module (c: char): [y: int];
        type Mode = (off, slow, fast);
             Acc = record total: real; count: int; end;
        var m: Mode; acc: Acc;
        define
            m = fast;
            acc.total = 10.5;
            acc.count = 3;
            y = ord(m) + acc.count + ord(c);
        end T;
    ");
}
