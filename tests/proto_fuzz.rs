//! Property and fuzz suite for the `ps_service::proto` wire parser.
//!
//! Two families, both seeded through `ps_support::rng::check` so every
//! failure replays and shrinks:
//!
//! * **Round-trip**: a random `Outputs` rendered by `format_outputs`
//!   re-enters the parser (the response grammar *is* the request value
//!   grammar) and every scalar and array element comes back bit-exact.
//! * **Never-panic**: mutated, truncated, concatenated, and random lines
//!   — plus adversarial `@lo:hi` headers at the i64 extremes — always
//!   return `Ok`/`Err` from `parse_request_limited`, never panic, and
//!   never accept an array the frame limit proves impossible.

use ps_core::proto::{self, WireCommand};
use ps_core::{Inputs, Outputs, OwnedArray, Value};
use ps_support::rng::{check, panic_message, shrink_vec, Lcg};
use ps_support::Symbol;

const MAX_FRAME: usize = 4096;

/// A random scalar that survives text round-tripping (any finite real
/// does — Rust's shortest formatting is read back exactly).
fn gen_value(rng: &mut Lcg) -> Value {
    match rng.index(3) {
        0 => Value::Int(rng.int(-1_000_000, 1_000_000)),
        1 => {
            let mantissa = rng.int(-(1 << 30), 1 << 30) as f64;
            let exp = rng.int(-6, 6) as i32;
            Value::Real(mantissa * 10f64.powi(exp))
        }
        _ => Value::Bool(rng.bool()),
    }
}

/// One generated response: named scalars plus one optional 1-D array
/// (small enough that the rendered line stays within `MAX_FRAME`).
#[derive(Clone, Debug)]
struct Resp {
    scalars: Vec<(String, Value)>,
    array: Option<(String, i64, Vec<f64>)>,
}

fn gen_resp(rng: &mut Lcg) -> Resp {
    let names = ["alpha", "beta", "gamma", "delta"];
    let picked = rng.subsequence(&names, 0, names.len());
    let scalars = picked
        .into_iter()
        .map(|n| (n.to_string(), gen_value(rng)))
        .collect();
    let array = rng.bool().then(|| {
        let lo = rng.int(-4, 4);
        let len = rng.usize(0, 12);
        let data: Vec<f64> = (0..len)
            .map(|_| rng.int(-1000, 1000) as f64 * 0.125)
            .collect();
        ("out".to_string(), lo, data)
    });
    Resp { scalars, array }
}

fn build_outputs(resp: &Resp) -> Outputs {
    let mut out = Outputs::default();
    for (name, v) in &resp.scalars {
        out.scalars.insert(name.clone(), *v);
    }
    if let Some((name, lo, data)) = &resp.array {
        let hi = lo + data.len() as i64 - 1;
        out.arrays.insert(
            name.clone(),
            OwnedArray::real(vec![(*lo, hi)], data.clone()),
        );
    }
    out
}

fn scalar(inputs: &Inputs, name: &str) -> Option<Value> {
    inputs.scalar(Symbol::intern(name))
}

/// `format_outputs` → rewrite `ok ...` as `solve p ...` → parse → every
/// value bit-exact.
#[test]
fn formatted_responses_round_trip_through_the_parser() {
    check(
        0xF0_22_17,
        64,
        gen_resp,
        |_| Vec::new(),
        |resp| {
            let line = proto::format_outputs(&build_outputs(resp));
            let request = format!(
                "solve p{}",
                line.strip_prefix("ok").expect("ok-prefixed response")
            );
            let cmd = proto::parse_request_limited(&request, MAX_FRAME)
                .map_err(|e| format!("rendered line failed to parse: {e}\nline: {request}"))?;
            let WireCommand::Solve { inputs, .. } = cmd else {
                return Err(format!("parsed as non-solve: {request}"));
            };
            for (name, v) in &resp.scalars {
                let got = scalar(&inputs, name)
                    .ok_or_else(|| format!("scalar `{name}` lost in round trip"))?;
                let same = match (*v, got) {
                    (Value::Int(a), Value::Int(b)) => a == b,
                    (Value::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
                    (Value::Bool(a), Value::Bool(b)) => a == b,
                    // A whole real re-parsing as an int would mean the
                    // `.0` marker failed; treat as a round-trip break.
                    _ => false,
                };
                if !same {
                    return Err(format!("scalar `{name}`: {v:?} came back as {got:?}"));
                }
            }
            if let Some((name, lo, data)) = &resp.array {
                let arr = inputs
                    .array(Symbol::intern(name))
                    .ok_or_else(|| format!("array `{name}` lost in round trip"))?;
                let hi = lo + data.len() as i64 - 1;
                if arr.dims != vec![(*lo, hi)] {
                    return Err(format!("array `{name}` bounds changed: {:?}", arr.dims));
                }
                if data.is_empty() {
                    // `@2:1:` carries no element to mark the element type;
                    // an empty array legitimately round-trips as int.
                    if arr.len() != 0 {
                        return Err(format!("empty array `{name}` grew: {}", arr.len()));
                    }
                    return Ok(());
                }
                // Every rendered element carries a `.0`/exponent marker,
                // so the parser must classify the array as real.
                let got = arr.as_real_slice();
                for (i, (a, b)) in data.iter().zip(got.iter()).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        return Err(format!("array `{name}`[{i}]: {a} came back as {b}"));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Feed the parser garbage derived from valid lines — truncations, byte
/// substitutions, insertions, duplications — plus fully random ASCII. It
/// must return without panicking every time.
#[test]
fn mutated_lines_never_panic_the_parser() {
    let templates = [
        "solve heat_1d M=4 maxK=6 alpha=0.25 u0=@0:5:0.0,1,2,3,4,0",
        "solve p x=1 y=-2.5e3 z=true a=@-3:3:1,2,3,4,5,6,7",
        "stats",
        "quit",
        "shutdown",
        "solve p a=@1:0: b=@0:0:42",
    ];
    check(
        0xFA_22_E5,
        256,
        |rng| {
            let mut line: Vec<u8> = templates[rng.index(templates.len())].bytes().collect();
            for _ in 0..rng.usize(0, 8) {
                match rng.index(4) {
                    0 if !line.is_empty() => {
                        // Substitute a byte (printable-ish range keeps the
                        // split_whitespace paths busy; \0 hits the rest).
                        let i = rng.index(line.len());
                        line[i] = rng.int(0, 126) as u8;
                    }
                    1 if !line.is_empty() => {
                        line.truncate(rng.index(line.len()));
                    }
                    2 => {
                        let i = rng.index(line.len() + 1);
                        line.insert(i, rng.int(0, 126) as u8);
                    }
                    _ => {
                        // Duplicate a random slice (repeated k=v, repeated
                        // commas, doubled prefixes).
                        if !line.is_empty() {
                            let a = rng.index(line.len());
                            let b = rng.usize(a, line.len());
                            let slice: Vec<u8> = line[a..b].to_vec();
                            line.extend(slice);
                        }
                    }
                }
            }
            String::from_utf8_lossy(&line).into_owned()
        },
        |line| {
            shrink_vec(&line.bytes().collect::<Vec<u8>>(), 0)
                .into_iter()
                .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
                .collect()
        },
        |line| {
            let outcome = std::panic::catch_unwind(|| {
                let _ = proto::parse_request_limited(line, MAX_FRAME);
            });
            outcome.map_err(|p| format!("parser panicked: {}", panic_message(p)))
        },
    );
}

/// Adversarial `@lo:hi` headers: bounds drawn from the full i64 range
/// (including the overflow corners) must parse to a structured error or a
/// small array — never panic, and never accept a width the frame limit
/// proves impossible.
#[test]
fn extreme_array_headers_never_panic_and_never_overallocate() {
    check(
        0xA2_24_7E,
        256,
        |rng| {
            let corner = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
            let pick = |rng: &mut Lcg| {
                if rng.bool() {
                    corner[rng.index(corner.len())]
                } else {
                    rng.int(-1_000_000_000, 1_000_000_000)
                }
            };
            let lo = pick(rng);
            let hi = pick(rng);
            let elems = rng.usize(0, 3);
            let body: Vec<String> = (0..elems).map(|i| i.to_string()).collect();
            format!("solve p a=@{lo}:{hi}:{}", body.join(","))
        },
        |_| Vec::new(),
        |line| {
            let parsed = std::panic::catch_unwind(|| proto::parse_request_limited(line, MAX_FRAME))
                .map_err(|p| format!("parser panicked on {line:?}: {}", panic_message(p)))?;
            if let Ok(WireCommand::Solve { inputs, .. }) = parsed {
                // Accepted: the array must actually be small enough to
                // have fit in a legal frame.
                if let Some(arr) = inputs.array(Symbol::intern("a")) {
                    if arr.len() > MAX_FRAME / 2 + 1 {
                        return Err(format!(
                            "accepted a {}-element array past the frame limit: {line:?}",
                            arr.len()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}
