//! Property tests for the scheduler: on randomly generated stencil systems
//! the scheduler either produces a flowchart that passes the conservative
//! replay validator, or reports a clean `NotSchedulable` error — it must
//! never emit an invalid schedule.
//!
//! Driven by the shrinking `ps_support::rng::check` harness (no
//! `proptest`): the same 48 stencil and 24 grid programs replay on every
//! run; a failure is greedily minimized (offset vectors halved, then
//! bisected) and reported with the `Lcg` state that replays it.

use ps_core::{
    compile, execute, run_naive, CompileError, CompileOptions, Inputs, RuntimeOptions, Sequential,
    ThreadPool,
};
use ps_support::rng::{check, shrink_vec};
use ps_support::{FxHashMap, Lcg, Symbol};

/// A randomly generated 1-D two-array stencil program.
#[derive(Debug, Clone)]
struct StencilProgram {
    /// Offsets (≥1) with which `a[K]` reads `a[K-off]`.
    a_self: Vec<i64>,
    /// Offsets with which `a[K]` reads `b[K-off]` (0 = same iteration).
    a_from_b: Vec<i64>,
    /// Offsets (≥1) with which `b[K]` reads `a[K-off]`.
    b_from_a: Vec<i64>,
    init_planes: i64,
}

impl StencilProgram {
    fn max_offset(&self) -> i64 {
        self.a_self
            .iter()
            .chain(&self.a_from_b)
            .chain(&self.b_from_a)
            .copied()
            .max()
            .unwrap_or(1)
            .max(1)
    }

    fn source(&self) -> String {
        let lo = self.init_planes + 1;
        let mut eqs = String::new();
        for p in 1..=self.init_planes {
            eqs.push_str(&format!("    a[{p}] = {p}.0;\n    b[{p}] = {}.5;\n", p));
        }
        let mut a_terms: Vec<String> = self.a_self.iter().map(|o| format!("a[K-{o}]")).collect();
        a_terms.extend(self.a_from_b.iter().map(|o| {
            if *o == 0 {
                "b[K]".to_string()
            } else {
                format!("b[K-{o}]")
            }
        }));
        a_terms.push("1.0".to_string());
        let mut b_terms: Vec<String> = self.b_from_a.iter().map(|o| format!("a[K-{o}]")).collect();
        b_terms.push("0.5".to_string());
        eqs.push_str(&format!("    a[K] = {};\n", a_terms.join(" + ")));
        eqs.push_str(&format!("    b[K] = {};\n", b_terms.join(" + ")));
        format!(
            "Gen: module (n: int): [y: real];
             type K = {lo} .. n;
             var a, b: array [1 .. n] of real;
             define
             {eqs}
                 y = a[n] + b[n];
             end Gen;"
        )
    }
}

/// Mirrors the original proptest strategy: 1–2 self offsets in 1..=3,
/// 0–2 `b` offsets in 0..=2, 0–2 cross offsets in 1..=3.
fn arb_stencil(rng: &mut Lcg) -> StencilProgram {
    let a_self = rng.vec_of(1, 2, |r| r.int(1, 3));
    let a_from_b = rng.vec_of(0, 2, |r| r.int(0, 2));
    let b_from_a = rng.vec_of(0, 2, |r| r.int(1, 3));
    let mut p = StencilProgram {
        a_self,
        a_from_b,
        b_from_a,
        init_planes: 0,
    };
    p.init_planes = p.max_offset();
    p
}

/// Shrink candidates: thin out each offset vector (the recursive `a_self`
/// list must stay nonempty), recomputing the derived init-plane count.
fn shrink_stencil(p: &StencilProgram) -> Vec<StencilProgram> {
    let rebuild = |a_self: Vec<i64>, a_from_b: Vec<i64>, b_from_a: Vec<i64>| {
        let mut q = StencilProgram {
            a_self,
            a_from_b,
            b_from_a,
            init_planes: 0,
        };
        q.init_planes = q.max_offset();
        q
    };
    let mut out = Vec::new();
    for cand in shrink_vec(&p.a_self, 1) {
        out.push(rebuild(cand, p.a_from_b.clone(), p.b_from_a.clone()));
    }
    for cand in shrink_vec(&p.a_from_b, 0) {
        out.push(rebuild(p.a_self.clone(), cand, p.b_from_a.clone()));
    }
    for cand in shrink_vec(&p.b_from_a, 0) {
        out.push(rebuild(p.a_self.clone(), p.a_from_b.clone(), cand));
    }
    out
}

/// Whatever the offsets, the schedule validates and the scheduled
/// interpreter agrees with the oracle (b[K] reading a[K] same-iteration
/// is legal: a's equation runs first inside the fused component).
#[test]
fn random_stencils_schedule_correctly() {
    check(0x5c11ed0, 48, arb_stencil, shrink_stencil, |prog| {
        let src = prog.source();
        let n = 8 + prog.max_offset();
        match compile(&src, CompileOptions::default()) {
            Ok(comp) => {
                // 1. The replay validator accepts the flowchart.
                let mut params = FxHashMap::default();
                params.insert(Symbol::intern("n"), n);
                ps_core::validate_flowchart(&comp.module, &comp.schedule.flowchart, &params)
                    .map_err(|e| format!("schedule must validate: {e:?}\n{src}"))?;

                // 2. Scheduled execution (with the write checker) matches
                //    the demand-driven oracle.
                let inputs = Inputs::new().set_int("n", n);
                let scheduled = execute(
                    &comp,
                    &inputs,
                    &Sequential,
                    RuntimeOptions {
                        check_writes: true,
                        ..Default::default()
                    },
                )
                .map_err(|e| format!("runs: {e}\n{src}"))?;
                let oracle =
                    run_naive(&comp.module, &inputs).map_err(|e| format!("oracle: {e}\n{src}"))?;
                let s = scheduled.scalar("y").as_real();
                let o = oracle.scalar("y").as_real();
                if (s - o).abs() >= 1e-9 {
                    return Err(format!("scheduled {s} vs oracle {o}\n{src}"));
                }
                Ok(())
            }
            Err(CompileError::Schedule(_)) => {
                // Clean refusal is acceptable (e.g. same-iteration cycles).
                Ok(())
            }
            Err(other) => Err(format!("{other}\n{src}")),
        }
    });
}

/// Random 2-D grid programs built from a safe offset menu: always
/// schedulable; parallel equals sequential equals oracle.
#[derive(Debug, Clone)]
struct GridProgram {
    /// Spatial offsets (di, dj) read at iteration K-1.
    prev_reads: Vec<(i64, i64)>,
}

fn arb_grid(rng: &mut Lcg) -> GridProgram {
    let prev_reads = rng.vec_of(1, 4, |r| (r.int(-1, 1), r.int(-1, 1)));
    GridProgram { prev_reads }
}

impl GridProgram {
    fn source(&self) -> String {
        let terms: Vec<String> = self
            .prev_reads
            .iter()
            .map(|(di, dj)| {
                let i = match di.cmp(&0) {
                    std::cmp::Ordering::Equal => "I".to_string(),
                    std::cmp::Ordering::Greater => format!("I+{di}"),
                    std::cmp::Ordering::Less => format!("I-{}", -di),
                };
                let j = match dj.cmp(&0) {
                    std::cmp::Ordering::Equal => "J".to_string(),
                    std::cmp::Ordering::Greater => format!("J+{dj}"),
                    std::cmp::Ordering::Less => format!("J-{}", -dj),
                };
                format!("g[K-1,{i},{j}]")
            })
            .collect();
        let sum = terms.join(" + ");
        let count = terms.len();
        format!(
            "Grid: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({sum}) / {count};
             end Grid;"
        )
    }
}

#[test]
fn random_grids_parallel_equals_oracle() {
    let shrink = |p: &GridProgram| {
        shrink_vec(&p.prev_reads, 1)
            .into_iter()
            .map(|prev_reads| GridProgram { prev_reads })
            .collect()
    };
    check(0x5c11ed1, 24, arb_grid, shrink, |prog| {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).map_err(|e| format!("{e}\n{src}"))?;
        // Jacobi shape: outer DO, inner DOALLs.
        let (do_n, doall_n) = comp.schedule.flowchart.loop_counts();
        if do_n != 1 || doall_n < 4 {
            return Err(format!(
                "unexpected shape {do_n} DO / {doall_n} DOALL\n{src}"
            ));
        }

        let m = 5i64;
        let side = (m + 2) as usize;
        let data: Vec<f64> = (0..side * side).map(|i| (i % 13) as f64 * 0.5).collect();
        let inputs = Inputs::new().set_int("M", m).set_int("maxK", 4).set_array(
            "init",
            ps_core::OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
        );
        let pool = ThreadPool::new(3);
        let par = execute(&comp, &inputs, &pool, RuntimeOptions::default())
            .map_err(|e| format!("parallel: {e}\n{src}"))?;
        let oracle = run_naive(&comp.module, &inputs).map_err(|e| format!("oracle: {e}\n{src}"))?;
        let diff = par.array("out").max_abs_diff(oracle.array("out"));
        if diff >= 1e-9 {
            return Err(format!("diff {diff}\n{src}"));
        }
        Ok(())
    });
}
