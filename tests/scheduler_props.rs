//! Property tests for the scheduler: on randomly generated stencil systems
//! the scheduler either produces a flowchart that passes the conservative
//! replay validator, or reports a clean `NotSchedulable` error — it must
//! never emit an invalid schedule.
//!
//! Driven by a seeded LCG (no `proptest`): the same 48 stencil and 24 grid
//! programs replay on every run; a failure names its case index and source.

use ps_core::{
    compile, execute, run_naive, CompileError, CompileOptions, Inputs, RuntimeOptions, Sequential,
    ThreadPool,
};
use ps_support::{FxHashMap, Lcg, Symbol};

/// A randomly generated 1-D two-array stencil program.
#[derive(Debug, Clone)]
struct StencilProgram {
    /// Offsets (≥1) with which `a[K]` reads `a[K-off]`.
    a_self: Vec<i64>,
    /// Offsets with which `a[K]` reads `b[K-off]` (0 = same iteration).
    a_from_b: Vec<i64>,
    /// Offsets (≥1) with which `b[K]` reads `a[K-off]`.
    b_from_a: Vec<i64>,
    init_planes: i64,
}

impl StencilProgram {
    fn max_offset(&self) -> i64 {
        self.a_self
            .iter()
            .chain(&self.a_from_b)
            .chain(&self.b_from_a)
            .copied()
            .max()
            .unwrap_or(1)
            .max(1)
    }

    fn source(&self) -> String {
        let lo = self.init_planes + 1;
        let mut eqs = String::new();
        for p in 1..=self.init_planes {
            eqs.push_str(&format!("    a[{p}] = {p}.0;\n    b[{p}] = {}.5;\n", p));
        }
        let mut a_terms: Vec<String> = self.a_self.iter().map(|o| format!("a[K-{o}]")).collect();
        a_terms.extend(self.a_from_b.iter().map(|o| {
            if *o == 0 {
                "b[K]".to_string()
            } else {
                format!("b[K-{o}]")
            }
        }));
        a_terms.push("1.0".to_string());
        let mut b_terms: Vec<String> = self.b_from_a.iter().map(|o| format!("a[K-{o}]")).collect();
        b_terms.push("0.5".to_string());
        eqs.push_str(&format!("    a[K] = {};\n", a_terms.join(" + ")));
        eqs.push_str(&format!("    b[K] = {};\n", b_terms.join(" + ")));
        format!(
            "Gen: module (n: int): [y: real];
             type K = {lo} .. n;
             var a, b: array [1 .. n] of real;
             define
             {eqs}
                 y = a[n] + b[n];
             end Gen;"
        )
    }
}

/// Mirrors the original proptest strategy: 1–2 self offsets in 1..=3,
/// 0–2 `b` offsets in 0..=2, 0–2 cross offsets in 1..=3.
fn arb_stencil(rng: &mut Lcg) -> StencilProgram {
    let a_self = rng.vec_of(1, 2, |r| r.int(1, 3));
    let a_from_b = rng.vec_of(0, 2, |r| r.int(0, 2));
    let b_from_a = rng.vec_of(0, 2, |r| r.int(1, 3));
    let mut p = StencilProgram {
        a_self,
        a_from_b,
        b_from_a,
        init_planes: 0,
    };
    p.init_planes = p.max_offset();
    p
}

/// Whatever the offsets, the schedule validates and the scheduled
/// interpreter agrees with the oracle (b[K] reading a[K] same-iteration
/// is legal: a's equation runs first inside the fused component).
#[test]
fn random_stencils_schedule_correctly() {
    let mut rng = Lcg::new(0x5c11ed0);
    for case in 0..48 {
        let prog = arb_stencil(&mut rng);
        let src = prog.source();
        let n = 8 + prog.max_offset();
        match compile(&src, CompileOptions::default()) {
            Ok(comp) => {
                // 1. The replay validator accepts the flowchart.
                let mut params = FxHashMap::default();
                params.insert(Symbol::intern("n"), n);
                ps_core::validate_flowchart(&comp.module, &comp.schedule.flowchart, &params)
                    .expect("schedule must validate");

                // 2. Scheduled execution (with the write checker) matches
                //    the demand-driven oracle.
                let inputs = Inputs::new().set_int("n", n);
                let scheduled = execute(
                    &comp,
                    &inputs,
                    &Sequential,
                    RuntimeOptions { check_writes: true },
                )
                .expect("runs");
                let oracle = run_naive(&comp.module, &inputs).expect("oracle runs");
                let s = scheduled.scalar("y").as_real();
                let o = oracle.scalar("y").as_real();
                assert!(
                    (s - o).abs() < 1e-9,
                    "case {case}: scheduled {s} vs oracle {o}\n{src}"
                );
            }
            Err(CompileError::Schedule(_)) => {
                // Clean refusal is acceptable (e.g. same-iteration cycles).
            }
            Err(other) => panic!("case {case}: {other}\n{src}"),
        }
    }
}

/// Random 2-D grid programs built from a safe offset menu: always
/// schedulable; parallel equals sequential equals oracle.
#[derive(Debug, Clone)]
struct GridProgram {
    /// Spatial offsets (di, dj) read at iteration K-1.
    prev_reads: Vec<(i64, i64)>,
}

fn arb_grid(rng: &mut Lcg) -> GridProgram {
    let prev_reads = rng.vec_of(1, 4, |r| (r.int(-1, 1), r.int(-1, 1)));
    GridProgram { prev_reads }
}

impl GridProgram {
    fn source(&self) -> String {
        let terms: Vec<String> = self
            .prev_reads
            .iter()
            .map(|(di, dj)| {
                let i = match di.cmp(&0) {
                    std::cmp::Ordering::Equal => "I".to_string(),
                    std::cmp::Ordering::Greater => format!("I+{di}"),
                    std::cmp::Ordering::Less => format!("I-{}", -di),
                };
                let j = match dj.cmp(&0) {
                    std::cmp::Ordering::Equal => "J".to_string(),
                    std::cmp::Ordering::Greater => format!("J+{dj}"),
                    std::cmp::Ordering::Less => format!("J-{}", -dj),
                };
                format!("g[K-1,{i},{j}]")
            })
            .collect();
        let sum = terms.join(" + ");
        let count = terms.len();
        format!(
            "Grid: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({sum}) / {count};
             end Grid;"
        )
    }
}

#[test]
fn random_grids_parallel_equals_oracle() {
    let mut rng = Lcg::new(0x5c11ed1);
    for case in 0..24 {
        let prog = arb_grid(&mut rng);
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).expect("schedulable");
        // Jacobi shape: outer DO, inner DOALLs.
        let (do_n, doall_n) = comp.schedule.flowchart.loop_counts();
        assert_eq!(do_n, 1, "case {case}\n{src}");
        assert!(doall_n >= 4, "case {case}\n{src}");

        let m = 5i64;
        let side = (m + 2) as usize;
        let data: Vec<f64> = (0..side * side).map(|i| (i % 13) as f64 * 0.5).collect();
        let inputs = Inputs::new().set_int("M", m).set_int("maxK", 4).set_array(
            "init",
            ps_core::OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
        );
        let pool = ThreadPool::new(3);
        let par = execute(&comp, &inputs, &pool, RuntimeOptions::default()).expect("parallel");
        let oracle = run_naive(&comp.module, &inputs).expect("oracle");
        let diff = par.array("out").max_abs_diff(oracle.array("out"));
        assert!(diff < 1e-9, "case {case}: diff {diff}\n{src}");
    }
}
