//! Property tests for the scheduler: on randomly generated stencil systems
//! the scheduler either produces a flowchart that passes the conservative
//! replay validator, or reports a clean `NotSchedulable` error — it must
//! never emit an invalid schedule.

use proptest::prelude::*;
use ps_core::{
    compile, execute, run_naive, CompileError, CompileOptions, Inputs, RuntimeOptions,
    Sequential, ThreadPool,
};
use ps_support::{FxHashMap, Symbol};

/// A randomly generated 1-D two-array stencil program.
#[derive(Debug, Clone)]
struct StencilProgram {
    /// Offsets (≥1) with which `a[K]` reads `a[K-off]`.
    a_self: Vec<i64>,
    /// Offsets with which `a[K]` reads `b[K-off]` (0 = same iteration).
    a_from_b: Vec<i64>,
    /// Offsets (≥1) with which `b[K]` reads `a[K-off]`.
    b_from_a: Vec<i64>,
    init_planes: i64,
}

impl StencilProgram {
    fn max_offset(&self) -> i64 {
        self.a_self
            .iter()
            .chain(&self.a_from_b)
            .chain(&self.b_from_a)
            .copied()
            .max()
            .unwrap_or(1)
            .max(1)
    }

    fn source(&self) -> String {
        let lo = self.init_planes + 1;
        let mut eqs = String::new();
        for p in 1..=self.init_planes {
            eqs.push_str(&format!("    a[{p}] = {p}.0;\n    b[{p}] = {}.5;\n", p));
        }
        let mut a_terms: Vec<String> =
            self.a_self.iter().map(|o| format!("a[K-{o}]")).collect();
        a_terms.extend(self.a_from_b.iter().map(|o| {
            if *o == 0 {
                "b[K]".to_string()
            } else {
                format!("b[K-{o}]")
            }
        }));
        a_terms.push("1.0".to_string());
        let mut b_terms: Vec<String> =
            self.b_from_a.iter().map(|o| format!("a[K-{o}]")).collect();
        b_terms.push("0.5".to_string());
        eqs.push_str(&format!("    a[K] = {};\n", a_terms.join(" + ")));
        eqs.push_str(&format!("    b[K] = {};\n", b_terms.join(" + ")));
        format!(
            "Gen: module (n: int): [y: real];
             type K = {lo} .. n;
             var a, b: array [1 .. n] of real;
             define
             {eqs}
                 y = a[n] + b[n];
             end Gen;"
        )
    }
}

fn stencil_strategy() -> impl Strategy<Value = StencilProgram> {
    (
        prop::collection::vec(1i64..4, 1..3),
        prop::collection::vec(0i64..3, 0..3),
        prop::collection::vec(1i64..4, 0..3),
    )
        .prop_map(|(a_self, a_from_b, b_from_a)| {
            let mut p = StencilProgram {
                a_self,
                a_from_b,
                b_from_a,
                init_planes: 0,
            };
            p.init_planes = p.max_offset();
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the offsets, the schedule validates and the scheduled
    /// interpreter agrees with the oracle (b[K] reading a[K] same-iteration
    /// is legal: a's equation runs first inside the fused component).
    #[test]
    fn random_stencils_schedule_correctly(prog in stencil_strategy()) {
        let src = prog.source();
        let n = 8 + prog.max_offset();
        match compile(&src, CompileOptions::default()) {
            Ok(comp) => {
                // 1. The replay validator accepts the flowchart.
                let mut params = FxHashMap::default();
                params.insert(Symbol::intern("n"), n);
                ps_core::validate_flowchart(&comp.module, &comp.schedule.flowchart, &params)
                    .expect("schedule must validate");

                // 2. Scheduled execution (with the write checker) matches
                //    the demand-driven oracle.
                let inputs = Inputs::new().set_int("n", n);
                let scheduled = execute(
                    &comp,
                    &inputs,
                    &Sequential,
                    RuntimeOptions { check_writes: true },
                ).expect("runs");
                let oracle = run_naive(&comp.module, &inputs).expect("oracle runs");
                let s = scheduled.scalar("y").as_real();
                let o = oracle.scalar("y").as_real();
                prop_assert!((s - o).abs() < 1e-9, "scheduled {s} vs oracle {o}\n{src}");
            }
            Err(CompileError::Schedule(_)) => {
                // Clean refusal is acceptable (e.g. same-iteration cycles).
            }
            Err(other) => return Err(TestCaseError::fail(format!("{other}\n{src}"))),
        }
    }
}

/// Random 2-D grid programs built from a safe offset menu: always
/// schedulable; parallel equals sequential equals oracle.
#[derive(Debug, Clone)]
struct GridProgram {
    /// Spatial offsets (di, dj) read at iteration K-1.
    prev_reads: Vec<(i64, i64)>,
}

fn grid_strategy() -> impl Strategy<Value = GridProgram> {
    prop::collection::vec((-1i64..=1, -1i64..=1), 1..5)
        .prop_map(|prev_reads| GridProgram { prev_reads })
}

impl GridProgram {
    fn source(&self) -> String {
        let terms: Vec<String> = self
            .prev_reads
            .iter()
            .map(|(di, dj)| {
                let i = match di.cmp(&0) {
                    std::cmp::Ordering::Equal => "I".to_string(),
                    std::cmp::Ordering::Greater => format!("I+{di}"),
                    std::cmp::Ordering::Less => format!("I-{}", -di),
                };
                let j = match dj.cmp(&0) {
                    std::cmp::Ordering::Equal => "J".to_string(),
                    std::cmp::Ordering::Greater => format!("J+{dj}"),
                    std::cmp::Ordering::Less => format!("J-{}", -dj),
                };
                format!("g[K-1,{i},{j}]")
            })
            .collect();
        let sum = terms.join(" + ");
        let count = terms.len();
        format!(
            "Grid: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({sum}) / {count};
             end Grid;"
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_grids_parallel_equals_oracle(prog in grid_strategy()) {
        let src = prog.source();
        let comp = compile(&src, CompileOptions::default()).expect("schedulable");
        // Jacobi shape: outer DO, inner DOALLs.
        let (do_n, doall_n) = comp.schedule.flowchart.loop_counts();
        prop_assert_eq!(do_n, 1);
        prop_assert!(doall_n >= 4);

        let m = 5i64;
        let side = (m + 2) as usize;
        let data: Vec<f64> = (0..side * side).map(|i| (i % 13) as f64 * 0.5).collect();
        let inputs = Inputs::new()
            .set_int("M", m)
            .set_int("maxK", 4)
            .set_array(
                "init",
                ps_core::OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
            );
        let pool = ThreadPool::new(3);
        let par = execute(&comp, &inputs, &pool, RuntimeOptions::default()).expect("parallel");
        let oracle = run_naive(&comp.module, &inputs).expect("oracle");
        let diff = par.array("out").max_abs_diff(oracle.array("out"));
        prop_assert!(diff < 1e-9, "diff {diff}\n{src}");
    }
}
