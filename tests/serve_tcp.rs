//! End-to-end TCP tests for the `ps-serve` front-end, focused on the
//! graceful cross-connection shutdown drain: `shutdown` must stop
//! accepting, let every live connection finish its in-flight frame, and
//! only then acknowledge and exit.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A listening `ps-serve` child whose port was parsed from the startup
/// handshake line. Killed on drop so a failing test cannot leak servers.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra_args: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ps-serve"))
            .arg("listen")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ps-serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("ps-serve prints a startup line")
            .expect("readable startup line");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect to ps-serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    /// Wait (bounded) for the server process to exit and return its
    /// success flag.
    fn wait_exit(&mut self) -> bool {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.success();
            }
            assert!(
                Instant::now() < deadline,
                "ps-serve did not exit after shutdown"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        line.trim_end().to_string()
    }

    /// The next read must observe a clean EOF (the server closed us).
    fn expect_eof(&mut self) {
        let mut buf = [0u8; 64];
        let n = self.reader.read(&mut buf).expect("read at EOF");
        assert_eq!(n, 0, "expected EOF, got {:?}", &buf[..n]);
    }
}

/// The accepted-requests counter from a fresh `stats` probe connection.
fn probe_requests(server: &Server) -> u64 {
    let mut c = server.connect();
    c.send("stats");
    let line = c.read_line();
    c.send("quit");
    let field = line
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("requests="))
        .unwrap_or_else(|| panic!("no requests= in {line:?}"));
    field.parse().expect("requests= is a number")
}

#[test]
fn solve_round_trip_over_tcp() {
    let mut server = Server::spawn(&[]);
    let mut c = server.connect();
    c.send("solve recurrence_1d rate=0.5 n=4");
    let reply = c.read_line();
    // balance[4] = 1.5^3
    assert_eq!(reply, "ok final=3.375");
    c.send("badcmd");
    assert!(c.read_line().starts_with("err "), "junk gets an err line");
    c.send("quit");
    c.expect_eof();
    let mut d = server.connect();
    d.send("shutdown");
    assert_eq!(d.read_line(), "ok bye");
    assert!(server.wait_exit(), "clean exit after shutdown");
}

#[test]
fn shutdown_drains_the_other_connections_in_flight_request() {
    // One service worker so the slow solve occupies the server while the
    // shutdown arrives on a different connection.
    let mut server = Server::spawn(&["--workers", "1"]);

    // Client B fires a slow request (an 8M-element recurrence takes long
    // enough to still be in flight below) and leaves it pending.
    let mut b = server.connect();
    b.send("solve recurrence_1d rate=0.0000001 n=8000000");

    // Wait until the server demonstrably *accepted* B's request: the
    // connection thread submits synchronously, so once the counter moves
    // the frame is in flight server-side.
    let deadline = Instant::now() + Duration::from_secs(30);
    while probe_requests(&server) < 1 {
        assert!(
            Instant::now() < deadline,
            "server never accepted the slow request"
        );
        std::thread::yield_now();
    }

    // Client A asks for shutdown while B's request is in flight.
    let mut a = server.connect();
    a.send("shutdown");

    // B's in-flight request still completes with a full response...
    let reply = b.read_line();
    assert!(
        reply.starts_with("ok final="),
        "in-flight request was answered, got {reply:?}"
    );
    // ...and only then does B's connection close.
    b.expect_eof();

    // The drain acknowledges A after B finished, and the process exits.
    assert_eq!(a.read_line(), "ok bye");
    assert!(server.wait_exit(), "clean exit after drain");
}

#[test]
fn concurrent_shutdowns_do_not_wedge_the_drain() {
    let mut server = Server::spawn(&[]);
    // Two clients race shutdown: one wins the drain, the other is just
    // acknowledged and closed; the server must still exit.
    let mut a = server.connect();
    let mut b = server.connect();
    a.send("shutdown");
    b.send("shutdown");
    // The drain winner always gets `ok bye` (its frame was read — that is
    // what started the drain — so its socket closes with a clean FIN). The
    // loser gets the acknowledgement, a clean EOF, or a connection reset:
    // if the process exits before its frame was read, the kernel answers
    // the close-with-unread-data with RST. Neither may hang.
    let mut byes = 0;
    for c in [&mut a, &mut b] {
        let mut line = String::new();
        match c.reader.read_line(&mut line) {
            Ok(n) => {
                if n > 0 {
                    assert_eq!(line.trim_end(), "ok bye");
                    byes += 1;
                }
            }
            Err(e) => assert_eq!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset,
                "loser may only fail with a reset, got {e:?}"
            ),
        }
    }
    assert!(byes >= 1, "the drain winner is acknowledged");
    assert!(server.wait_exit(), "clean exit with racing shutdowns");
}
