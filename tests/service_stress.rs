//! Concurrent-client stress suite for `ps-service`.
//!
//! Seeded request mixes (N client threads × M requests across several
//! programs with random parameter vectors) are fired at a shared
//! [`Service`] and every response is asserted **bit-identical** to a
//! direct `Program::run` oracle computed outside the service — including
//! while injected panicking requests (integer `div` by zero) bounce off
//! the request boundary. Failures shrink to a minimal request vector via
//! `ps_support::rng::check`.

use ps_core::{
    compile, CompileOptions, Inputs, OwnedArray, Program, ProgramKey, RuntimeOptions, Sequential,
    Service, ServiceOptions, SolveError, SolveRequest,
};
use ps_support::rng::{check, shrink_vec, Lcg};

const COMPOUND: &str = "Compound: module (rate: real; n: int): [final: real];
    type K = 2 .. n;
    var balance: array [1 .. n] of real;
    define
        balance[1] = 1.0;
        balance[K] = balance[K-1] * (1.0 + rate);
        final = balance[n];
    end Compound;";

const PIPELINE: &str = "Pipeline: module (xs: array[I] of real; n: int): [out: array[I] of real];
    type I, L, T = 1 .. n;
    var scaled, shifted: array [1 .. n] of real;
    define
        scaled[I] = xs[I] * 2.0;
        shifted[L] = scaled[L] + 1.0;
        out[T] = sqrt(abs(shifted[T]));
    end Pipeline;";

/// `q = 0` panics inside the solve — the deliberate fault injection.
const DIVIDER: &str = "Divider: module (p: int; q: int): [y: int];
    define y = p div q; end Divider;";

const SOURCES: [&str; 3] = [COMPOUND, PIPELINE, DIVIDER];

/// One generated request: which program plus two raw parameter draws the
/// program-specific input builders interpret.
#[derive(Clone, Debug)]
struct Req {
    prog: usize,
    a: i64,
    b: i64,
}

fn gen_req(rng: &mut Lcg) -> Req {
    Req {
        prog: rng.index(SOURCES.len()),
        a: rng.int(-8, 8),
        b: rng.int(0, 24),
    }
}

fn inputs_for(req: &Req) -> Inputs {
    match req.prog {
        0 => Inputs::new()
            .set_real("rate", req.a as f64 * 0.125)
            .set_int("n", 2 + req.b % 12),
        1 => {
            let n = 1 + req.b % 6;
            let xs: Vec<f64> = (0..n).map(|i| (req.a + i) as f64 * 0.75 - 1.0).collect();
            Inputs::new()
                .set_int("n", n)
                .set_array("xs", OwnedArray::real(vec![(1, n)], xs))
        }
        _ => Inputs::new().set_int("p", req.a).set_int("q", req.b % 4),
    }
}

/// `true` when the request is the injected fault (divide by zero panics).
fn expect_panic(req: &Req) -> bool {
    req.prog == 2 && req.b % 4 == 0
}

/// Direct compile-once oracles, one per program, built outside the
/// service.
struct Oracle {
    comps: Vec<ps_core::Compilation>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            comps: SOURCES
                .iter()
                .map(|s| compile(s, CompileOptions::default()).expect("stress program compiles"))
                .collect(),
        }
    }

    /// Run one request directly and return its bit-comparable summary.
    fn run(&self, programs: &[Program<'_>], req: &Req) -> Vec<u64> {
        let out = programs[req.prog]
            .run(&inputs_for(req), &Sequential)
            .expect("oracle run succeeds");
        match req.prog {
            0 => vec![out.scalar("final").as_real().to_bits()],
            1 => out
                .array("out")
                .as_real_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect(),
            _ => vec![out.scalar("y").as_int() as u64],
        }
    }
}

fn response_bits(req: &Req, out: &ps_core::Outputs) -> Vec<u64> {
    match req.prog {
        0 => vec![out.scalar("final").as_real().to_bits()],
        1 => out
            .array("out")
            .as_real_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect(),
        _ => vec![out.scalar("y").as_int() as u64],
    }
}

/// Fire `reqs` at a fresh service from `client_threads` concurrent client
/// threads; every response must match the oracle bit-for-bit, and every
/// injected fault must come back as a panic error. `solve_threads > 1`
/// runs every solve on the service's shared work-stealing pool — the
/// oracle stays `Sequential`, so this also proves parallel solves are
/// bit-identical to serial ones.
fn run_mix(
    reqs: &[Req],
    client_threads: usize,
    workers: usize,
    solve_threads: usize,
) -> Result<(), String> {
    let oracle = Oracle::new();
    let programs: Vec<Program<'_>> = oracle
        .comps
        .iter()
        .map(|c| Program::compile(c, RuntimeOptions::default()))
        .collect();
    let expected: Vec<Option<Vec<u64>>> = reqs
        .iter()
        .map(|r| (!expect_panic(r)).then(|| oracle.run(&programs, r)))
        .collect();

    let service = Service::new(ServiceOptions {
        workers,
        solve_threads,
        batch_max: 4,
        ..Default::default()
    });
    let keys: Vec<ProgramKey> = SOURCES
        .iter()
        .map(|s| service.register(s).expect("service compiles the program"))
        .collect();

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..client_threads)
            .map(|t| {
                let service = &service;
                let keys = &keys;
                let expected = &expected;
                scope.spawn(move || {
                    let mut failures = Vec::new();
                    // Client t owns requests t, t+T, t+2T, ... — together
                    // the threads cover every request exactly once.
                    for (i, req) in reqs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % client_threads == t)
                    {
                        let got = service
                            .submit(SolveRequest::new(keys[req.prog].clone(), inputs_for(req)))
                            .wait();
                        match (&expected[i], got) {
                            (None, Err(SolveError::Panicked(_))) => {}
                            (None, other) => failures.push(format!(
                                "request {i} ({req:?}): expected panic error, got {other:?}"
                            )),
                            (Some(bits), Ok(out)) => {
                                if &response_bits(req, &out) != bits {
                                    failures.push(format!(
                                        "request {i} ({req:?}): response differs from direct \
                                         Program::run"
                                    ));
                                }
                            }
                            (Some(_), Err(e)) => failures
                                .push(format!("request {i} ({req:?}): unexpected error {e}")),
                        }
                    }
                    failures
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    let stats = service.stats();
    if stats.responses != reqs.len() as u64 {
        return Err(format!(
            "responses {} != requests {}",
            stats.responses,
            reqs.len()
        ));
    }
    let faults = reqs.iter().filter(|r| expect_panic(r)).count() as u64;
    if stats.panics != faults {
        return Err(format!(
            "panic counter {} != injected faults {faults}",
            stats.panics
        ));
    }
    Ok(())
}

#[test]
fn seeded_mixed_load_is_bit_identical_to_direct_runs() {
    check(
        0x5e41_ce01,
        6,
        |rng| rng.vec_of(8, 40, gen_req),
        |reqs| shrink_vec(reqs, 1),
        |reqs| run_mix(reqs, 4, 4, 1),
    );
}

#[test]
fn panic_heavy_mix_never_poisons_workers() {
    // Every other request is the injected fault; two workers serve them
    // all, so each worker repeatedly survives a panicking solve.
    check(
        0xdead_beef,
        4,
        |rng| {
            let mut reqs = rng.vec_of(10, 24, gen_req);
            for (i, r) in reqs.iter_mut().enumerate() {
                if i % 2 == 0 {
                    r.prog = 2;
                    r.b = 0; // q = 0 → div-by-zero panic
                }
            }
            reqs
        },
        |reqs| shrink_vec(reqs, 1),
        |reqs| run_mix(reqs, 4, 2, 1),
    );
}

/// The full mixed load again, but with `solve_threads: 2` so every solve
/// runs its `DOALL` regions on the shared work-stealing pool while two
/// workers submit concurrently. Responses must stay bit-identical to the
/// `Sequential` oracle — parallel chunking may not perturb a single bit —
/// and injected panics now unwind out of pool chunks instead of a plain
/// loop, exercising the region abort path end to end.
#[test]
fn parallel_solves_are_bit_identical_to_sequential_oracle() {
    check(
        0x5e41_ce02,
        5,
        |rng| rng.vec_of(8, 32, gen_req),
        |reqs| shrink_vec(reqs, 1),
        |reqs| run_mix(reqs, 4, 2, 2),
    );
}

#[test]
fn warm_registry_hits_exceed_compiles() {
    let service = Service::new(ServiceOptions {
        workers: 4,
        ..Default::default()
    });
    let keys: Vec<ProgramKey> = SOURCES
        .iter()
        .map(|s| service.register(s).unwrap())
        .collect();
    let mut rng = Lcg::new(41);
    let reqs: Vec<Req> = (0..64)
        .map(|_| {
            let mut r = gen_req(&mut rng);
            r.b = 1 + r.b % 3; // keep the divider on the non-panicking path
            r
        })
        .collect();
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| service.submit(SolveRequest::new(keys[r.prog].clone(), inputs_for(r))))
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.responses, 64);
    assert_eq!(stats.compiles, 3, "one compile per program");
    assert!(
        stats.cache_hits > stats.compiles,
        "warm path: hits {} must exceed compiles {}",
        stats.cache_hits,
        stats.compiles
    );
    assert!(stats.batches <= stats.requests);
}

#[test]
fn spec_cache_stays_bounded_under_adversarial_diversity() {
    // Registry-level view of the satellite: a tight per-program spec cache
    // under a parameter sweep keeps memory bounded and counts evictions,
    // while every answer stays correct.
    let registry = ps_core::Registry::new(4);
    let key = ProgramKey::new(
        COMPOUND,
        RuntimeOptions {
            spec_cache_cap: 3,
            ..Default::default()
        },
    );
    let entry = registry.get_or_compile(&key).unwrap();
    for n in 2..40i64 {
        let out = entry
            .run(
                &Inputs::new().set_real("rate", 1.0).set_int("n", n),
                &Sequential,
            )
            .unwrap();
        assert_eq!(
            out.scalar("final").as_real(),
            2.0f64.powi(n as i32 - 1),
            "n = {n}"
        );
    }
    assert!(entry.spec_cached() <= 3, "cache bounded at its cap");
    assert!(
        entry.spec_evictions() >= 35 - 3,
        "a 38-layout sweep over a 3-slot cache evicts constantly"
    );
}

/// With `solve_threads: 2` and two service workers, concurrent solves
/// must *observably* overlap inside the shared pool: the pool's
/// `max_live_regions` high-water mark reaches ≥ 2 (two workers' `DOALL`
/// regions in flight at once) — the exact scenario the old one-region
/// broadcast executor serialized. Overlap is schedule-dependent on a
/// loaded box, so waves of wide solves are retried under a deadline
/// until the mark is observed; `batch_max: 1` keeps the two workers on
/// separate requests instead of micro-batching them onto one.
#[test]
fn parallel_solves_observably_overlap_in_the_shared_pool() {
    use std::time::{Duration, Instant};

    let service = Service::new(ServiceOptions {
        workers: 2,
        solve_threads: 2,
        batch_max: 1,
        ..Default::default()
    });
    let key = service.register(PIPELINE).unwrap();
    let mut rng = Lcg::new(0x0ae8_1a9);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // One wave: 8 wide solves (three n-element DOALL regions each)
        // racing through 2 workers onto the shared pool.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let n = 200_000;
                let base = rng.int(-4, 4) as f64 * 0.5;
                let xs: Vec<f64> = (0..n).map(|i| base + i as f64 * 1e-5).collect();
                let inputs = Inputs::new()
                    .set_int("n", n)
                    .set_array("xs", OwnedArray::real(vec![(1, n)], xs));
                service.submit(SolveRequest::new(key.clone(), inputs))
            })
            .collect();
        for h in handles {
            h.wait().expect("wide solve succeeds");
        }
        let pool = service
            .pool_stats()
            .expect("solve_threads > 1 exposes the shared pool");
        assert!(pool.regions > 0, "solves dispatched DOALL regions");
        if pool.max_live_regions >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no overlap observed before the deadline: {pool}"
        );
    }
}
