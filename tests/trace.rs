//! ps-trace integration proofs: the disabled path allocates nothing, the
//! rings never lose the newest events, exported traces are valid
//! monotone JSON, per-stage histograms reconcile with `ServiceStats`,
//! and an injected worker panic leaves a flight-recorder dump naming the
//! thread, the request span, and the program.
//!
//! Tracing's enable flag is process-global, so every test here serializes
//! on one lock and restores the disabled state before releasing it.

use ps_core::{FaultInjector, FaultSpec, Service, ServiceOptions, SolveError, SolveRequest};
use ps_trace::{EvKind, Phase, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes tests that flip the process-global tracing flag.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_lock() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const RECURRENCE: &str = "Compound: module (rate: real; n: int): [final: real];
    type K = 2 .. n;
    var balance: array [1 .. n] of real;
    define
        balance[1] = 1.0;
        balance[K] = balance[K-1] * (1.0 + rate);
        final = balance[n];
    end Compound;";

fn inputs(n: i64) -> ps_core::Inputs {
    ps_core::Inputs::new().set_real("rate", 0.5).set_int("n", n)
}

/// The headline claim of the tentpole: while tracing is disabled, an
/// instrumentation site costs one relaxed load — no allocation, no
/// thread-local, no clock. 10k emits and span guards must not allocate a
/// single time.
#[test]
fn disabled_path_is_allocation_free() {
    let _l = trace_lock();
    ps_trace::disable();
    // Min over a few attempts: the harness may spawn a test thread (which
    // allocates) concurrently with one window, but not with all of them.
    let allocs = (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for i in 0..10_000u64 {
                ps_trace::emit(EvKind::Steal, Phase::Instant, i, i, i);
                let _g = ps_trace::span_with(EvKind::Solve, i, i, 0);
                let _h = ps_trace::span_with(EvKind::Region, i, 0, i);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap();
    assert_eq!(
        allocs, 0,
        "disabled tracing must not allocate (got {allocs} allocations \
         across 30k instrumentation sites)"
    );
}

/// Overflowing the ring drops the *oldest* events: after pushing
/// RING_CAP + K distinguishable events, exactly RING_CAP remain and they
/// are the newest RING_CAP, oldest first.
#[test]
fn ring_wraparound_keeps_the_newest_events() {
    let _l = trace_lock();
    ps_trace::enable();
    let total = (ps_trace::RING_CAP + 257) as u64;
    let base = 0x5EED_0000u64;
    for i in 0..total {
        ps_trace::emit(EvKind::Chunk, Phase::Complete, 1, base + i, i);
    }
    let events = ps_trace::current_thread_events();
    ps_trace::disable();
    assert_eq!(events.len(), ps_trace::RING_CAP, "ring holds exactly CAP");
    let first = events.first().expect("nonempty").a;
    let last = events.last().expect("nonempty").a;
    assert_eq!(
        last,
        base + total - 1,
        "the newest event survives the wraparound"
    );
    assert_eq!(
        first,
        base + total - ps_trace::RING_CAP as u64,
        "exactly the oldest events were dropped"
    );
    // Oldest→newest with no gaps.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.a, first + i as u64, "contiguous at index {i}");
    }
}

/// The Chrome exporter emits valid JSON (checked by ps-trace's own
/// parser, the same one behind the CLI) whose records are sorted by
/// start timestamp.
#[test]
fn exported_trace_is_valid_json_with_monotone_timestamps() {
    let _l = trace_lock();
    ps_trace::enable();
    // A little multi-thread traffic so the exporter has to merge rings.
    {
        let _g = ps_trace::span(EvKind::Solve, 0, 0);
        ps_trace::emit(EvKind::Batch, Phase::Instant, 0, 3, 0);
    }
    std::thread::spawn(|| {
        let _g = ps_trace::span(EvKind::Region, 0, 64);
        ps_trace::emit(EvKind::Chunk, Phase::Complete, 9, 1_000, 0);
    })
    .join()
    .expect("emitter thread");
    let json = ps_trace::chrome_trace_json(&ps_trace::snapshot());
    ps_trace::disable();
    ps_trace::validate_json(&json).expect("exporter output is valid JSON");
    let records = ps_trace::parse_trace(&json).expect("parses as a trace");
    assert!(records.len() >= 5, "all emitted events exported");
    for w in records.windows(2) {
        assert!(
            w[0].ts_us <= w[1].ts_us,
            "timestamps sorted: {} > {}",
            w[0].ts_us,
            w[1].ts_us
        );
    }
}

/// With tracing on, the per-stage histograms reconcile with the service's
/// own counters: one queue-wait and one solve sample per response.
#[test]
fn stage_histograms_reconcile_with_service_stats() {
    let _l = trace_lock();
    ps_trace::enable();
    let svc = Service::new(ServiceOptions {
        workers: 1,
        ..Default::default()
    });
    let key = svc.register(RECURRENCE).expect("registers");
    let handles: Vec<_> = (0..6)
        .map(|i| svc.submit(SolveRequest::new(key.clone(), inputs(4 + (i % 3)))))
        .collect();
    let spans: Vec<u64> = handles.iter().map(|h| h.trace_span()).collect();
    for h in handles {
        h.wait().expect("solves succeed");
    }
    let stats = svc.stats();
    svc.shutdown();
    ps_trace::disable();
    assert!(spans.iter().all(|&s| s != 0), "live tracing mints spans");
    assert_eq!(stats.responses, 6);
    let solve = stats.stages.get(Stage::Solve);
    let wait = stats.stages.get(Stage::QueueWait);
    assert_eq!(solve.count, 6, "one solve sample per response");
    assert_eq!(wait.count, 6, "one queue-wait sample per response");
    assert!(solve.quantile_ns(0.99) >= solve.quantile_ns(0.5));
    let wire = stats.stages.wire_form();
    assert!(
        wire.contains("solve:6:"),
        "wire form carries counts: {wire}"
    );
}

/// A seeded injected worker panic triggers the flight recorder: the dump
/// names the worker thread, the request's span id, and the program label.
#[test]
fn injected_worker_panic_leaves_a_flight_dump() {
    let _l = trace_lock();
    ps_trace::enable();
    let _ = ps_trace::flight::take_dumps(); // drop earlier tests' dumps
    let svc = Service::new(ServiceOptions {
        workers: 1,
        // Rate 1000‰: the injected panic fires on the first solve.
        faults: FaultInjector::new(
            FaultSpec::seeded(7).rate(ps_core::FaultPoint::WorkerPanic, 1000),
        ),
        ..Default::default()
    });
    let key = svc.register(RECURRENCE).expect("registers");
    let handle = svc.submit(SolveRequest::new(key, inputs(5)));
    let span = handle.trace_span();
    assert_ne!(span, 0, "tracing was on at submit");
    match handle.wait_timeout(Duration::from_secs(60)) {
        Some(Err(SolveError::Panicked(msg))) => {
            assert!(msg.contains("injected fault"), "{msg}")
        }
        other => panic!("expected injected panic, got {other:?}"),
    }
    svc.shutdown();
    ps_trace::disable();
    let dumps = ps_trace::flight::take_dumps();
    let dump = dumps
        .iter()
        .find(|d| d.contains("worker panic serving request span"))
        .unwrap_or_else(|| panic!("no panic dump among {} dumps", dumps.len()));
    assert!(
        dump.contains(&format!("request span {span}")),
        "dump names the request span {span}:\n{dump}"
    );
    assert!(
        dump.contains("ps-service-worker-"),
        "dump names the worker thread:\n{dump}"
    );
    assert!(
        dump.contains("[Compound]"),
        "dump resolves the program label:\n{dump}"
    );
    assert!(dump.contains("fault"), "the Fault event is in the tail");
}
