//! Property tests for the hyperplane machinery: the time-vector solver and
//! unimodular completion on random dependence sets, and the full transform
//! on random Gauss–Seidel-like stencils.
//!
//! Driven by the shrinking `ps_support::rng::check` harness (no
//! `proptest`): each property replays the same cases (64 solver, 64
//! completion, 16 stencil) on every run, and failures are minimized by
//! halving/bisecting the dependence or offset lists before reporting.

use ps_core::{
    compile, execute, execute_transformed, CompileOptions, Inputs, RuntimeOptions, Sequential,
    StorageMode, ThreadPool,
};
use ps_hyperplane::imat::unimodular_completion;
use ps_hyperplane::solve_time_vector;
use ps_support::rng::{check, shrink_vec};
use ps_support::Lcg;

/// Dependence vectors guaranteed feasible: each has a strictly positive
/// first component (a "time-like" axis exists). 1–5 vectors, first
/// component 1..=2, remaining components -2..=2 (the proptest strategy).
fn feasible_deps(rng: &mut Lcg, dims: usize) -> Vec<Vec<i64>> {
    rng.vec_of(1, 5, |r| {
        let mut v = vec![r.int(1, 2)];
        for _ in 1..dims {
            v.push(r.int(-2, 2));
        }
        v
    })
}

/// The solved time vector satisfies every inequality, is nonnegative,
/// and is sum-minimal (no vector with a smaller coefficient sum works).
#[test]
fn solver_is_sound_and_minimal() {
    check(
        0x44f0,
        64,
        |rng| feasible_deps(rng, 3),
        |deps| shrink_vec(deps, 1),
        |deps| {
            let pi =
                solve_time_vector(deps).map_err(|e| format!("feasible by construction: {e:?}"))?;
            if pi.iter().any(|&c| c < 0) {
                return Err(format!("negative coefficient in {pi:?}"));
            }
            for d in deps {
                let dot: i64 = pi.iter().zip(d).map(|(a, b)| a * b).sum();
                if dot < 1 {
                    return Err(format!("pi {pi:?} fails {d:?}"));
                }
            }
            // Minimality: brute-force all vectors with smaller sum.
            let sum: i64 = pi.iter().sum();
            for a in 0..sum {
                for b in 0..(sum - a) {
                    let c = sum - 1 - a - b;
                    if c < 0 {
                        continue;
                    }
                    let cand = [a, b, c];
                    let ok = deps
                        .iter()
                        .all(|d| cand.iter().zip(d).map(|(x, y)| x * y).sum::<i64>() >= 1);
                    if ok {
                        return Err(format!("smaller vector {cand:?} also works (pi {pi:?})"));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Unimodular completion: first row is pi, |det| = 1, exact inverse.
#[test]
fn completion_is_unimodular() {
    check(
        0x44f1,
        64,
        |rng| feasible_deps(rng, 4),
        |deps| shrink_vec(deps, 1),
        |deps| {
            let pi = solve_time_vector(deps).map_err(|e| format!("feasible: {e:?}"))?;
            // The solver result may share a factor only if gcd > 1 is optimal —
            // the minimal solution always has gcd 1 (dividing by the gcd keeps
            // all inequalities, contradicting minimality otherwise).
            let t = unimodular_completion(&pi);
            assert_eq!(t.row(0), pi.as_slice());
            let det = t.det();
            if det != 1 && det != -1 {
                return Err(format!("det {det} not unimodular (pi {pi:?})"));
            }
            let inv = t.unimodular_inverse();
            let prod = t.mul(&inv);
            for i in 0..4 {
                for j in 0..4 {
                    if prod[(i, j)] != i64::from(i == j) {
                        return Err(format!("T * T^-1 != I at ({i},{j})"));
                    }
                }
            }
            // Every transformed dependence moves strictly forward in time.
            for d in deps {
                if t.mul_vec(d)[0] < 1 {
                    return Err(format!("dependence {d:?} not time-forward"));
                }
            }
            Ok(())
        },
    );
}

/// Random Gauss–Seidel-style stencils: mix of same-iteration reads from the
/// "past" quadrant and previous-iteration reads from anywhere nearby.
#[derive(Debug, Clone)]
struct GsProgram {
    /// Same-iteration reads: (di, dj) with di + dj < 0 lexicographically
    /// safe offsets drawn from {(0,-1), (-1,0), (-1,-1), (-1,1)}.
    current: Vec<(i64, i64)>,
    /// Previous-iteration reads: any |di|,|dj| ≤ 1.
    previous: Vec<(i64, i64)>,
}

fn arb_gs(rng: &mut Lcg) -> GsProgram {
    let menu = [(0i64, -1i64), (-1, 0), (-1, -1), (-1, 1)];
    let current = rng.subsequence(&menu, 1, 3);
    let previous = rng.vec_of(1, 3, |r| (r.int(-1, 1), r.int(-1, 1)));
    GsProgram { current, previous }
}

fn offset(base: &str, d: i64) -> String {
    match d.cmp(&0) {
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{d}"),
        std::cmp::Ordering::Less => format!("{base}-{}", -d),
    }
}

impl GsProgram {
    fn source(&self) -> String {
        let mut terms = Vec::new();
        for (di, dj) in &self.current {
            terms.push(format!("g[K,{},{}]", offset("I", *di), offset("J", *dj)));
        }
        for (di, dj) in &self.previous {
            terms.push(format!("g[K-1,{},{}]", offset("I", *di), offset("J", *dj)));
        }
        let n = terms.len();
        format!(
            "GS: module (init: array[I,J] of real; M: int; maxK: int):
                 [out: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var g: array [1 .. maxK] of array[I,J] of real;
             define
                g[1] = init;
                out = g[maxK];
                g[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then g[K-1,I,J]
                           else ({}) / {n};
             end GS;",
            terms.join(" + ")
        )
    }
}

/// Shrink candidates: thin out the same-iteration and previous-iteration
/// read lists (both stay nonempty, preserving the Gauss–Seidel shape).
fn shrink_gs(p: &GsProgram) -> Vec<GsProgram> {
    let mut out = Vec::new();
    for current in shrink_vec(&p.current, 1) {
        out.push(GsProgram {
            current,
            previous: p.previous.clone(),
        });
    }
    for previous in shrink_vec(&p.previous, 1) {
        out.push(GsProgram {
            current: p.current.clone(),
            previous,
        });
    }
    out
}

/// The windowed wavefront transform preserves semantics on random
/// Gauss–Seidel stencils, sequentially and in parallel, with the write
/// checker enabled.
#[test]
fn random_gs_transform_preserves_semantics() {
    check(0x44f2, 16, arb_gs, shrink_gs, |prog| {
        let src = prog.source();
        let comp = compile(
            &src,
            CompileOptions {
                hyperplane: Some(StorageMode::Windowed),
                ..Default::default()
            },
        )
        .map_err(|e| format!("transformable: {e}\n{src}"))?;
        let art = comp.transformed.as_ref().unwrap();
        // Legality: all transformed deps step forward in time.
        for d in &art.result.transformed_deps {
            if d[0] < 1 {
                return Err(format!("transformed dep {d:?} not time-forward\n{src}"));
            }
        }
        // Window = 1 + max time offset.
        let max_t = art
            .result
            .transformed_deps
            .iter()
            .map(|d| d[0])
            .max()
            .unwrap();
        if art.result.window != 1 + max_t {
            return Err(format!(
                "window {} != 1 + max time offset {max_t}\n{src}",
                art.result.window
            ));
        }

        let m = 5i64;
        let side = (m + 2) as usize;
        let data: Vec<f64> = (0..side * side).map(|i| ((i * 7) % 11) as f64).collect();
        let inputs = Inputs::new().set_int("M", m).set_int("maxK", 4).set_array(
            "init",
            ps_core::OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
        );
        let base = execute(&comp, &inputs, &Sequential, RuntimeOptions::default())
            .map_err(|e| format!("base runs: {e}\n{src}"))?;
        let wave = execute_transformed(
            &comp,
            &inputs,
            &Sequential,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        )
        .map_err(|e| format!("wavefront runs: {e}\n{src}"))?;
        let diff = base.array("out").max_abs_diff(wave.array("out"));
        if diff >= 1e-9 {
            return Err(format!("diff {diff}\n{src}"));
        }

        let pool = ThreadPool::new(3);
        let wave_par = execute_transformed(&comp, &inputs, &pool, RuntimeOptions::default())
            .map_err(|e| format!("parallel wavefront runs: {e}\n{src}"))?;
        let pdiff = wave.array("out").max_abs_diff(wave_par.array("out"));
        if pdiff != 0.0 {
            return Err(format!("parallel diff {pdiff}\n{src}"));
        }
        Ok(())
    });
}
