//! Property tests: windowed array mapping vs a full array, under the
//! sliding-access pattern the scheduler guarantees.
//!
//! Driven by a seeded LCG (no `proptest`): each property replays the same
//! 32 cases on every run; a failure names its case index.

use ps_runtime::Value;
use ps_support::Lcg;

// The ndarray module is internal; exercise it through a generated PS
// program: a w-term recurrence forces a window of w, and the result must
// match the oracle for any coefficients.
use ps_core::{compile, execute, run_naive, CompileOptions, Inputs, RuntimeOptions, Sequential};

/// Random linear recurrences of depth d: window = d+1 and the windowed
/// scheduled run matches the (unwindowed) oracle exactly.
#[test]
fn windowed_recurrence_matches_oracle() {
    let mut rng = Lcg::new(0x111d0);
    for case in 0..32 {
        let depth = rng.usize(1, 3);
        let coeffs: Vec<i64> = (0..3).map(|_| rng.int(1, 2)).collect();
        let n = rng.int(8, 23);
        // Growth bound: with coefficients <= 2 over <= 3 terms the dominant
        // root is < 3, so values stay below 3^24 << i64::MAX.
        let d = depth.min(coeffs.len());
        let mut inits = String::new();
        for p in 1..=d {
            inits.push_str(&format!("    a[{p}] = {p};\n"));
        }
        let terms: Vec<String> = (1..=d)
            .map(|o| format!("{} * a[K-{o}]", coeffs[o - 1]))
            .collect();
        let src = format!(
            "Rec: module (n: int): [y: int];
             type K = {lo} .. n;
             var a: array [1 .. n] of int;
             define
             {inits}
                 a[K] = {sum};
                 y = a[n];
             end Rec;",
            lo = d + 1,
            sum = terms.join(" + ")
        );
        let comp = compile(&src, CompileOptions::default()).expect("compiles");
        let a = comp.module.data_by_name("a").unwrap();
        assert_eq!(
            comp.schedule.memory.window(a, 0),
            Some(d as i64 + 1),
            "case {case}"
        );

        let inputs = Inputs::new().set_int("n", n);
        let scheduled = execute(
            &comp,
            &inputs,
            &Sequential,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        )
        .expect("windowed run");
        let oracle = run_naive(&comp.module, &inputs).expect("oracle");
        assert_eq!(scheduled.scalar("y"), oracle.scalar("y"), "case {case}");
    }
}

/// Integer semantics agree between the two interpreters on arbitrary
/// expression shapes (div/mod/min/max/abs chains).
#[test]
fn int_expression_semantics_agree() {
    let mut rng = Lcg::new(0x111d1);
    for case in 0..32 {
        let x = rng.int(-50, 49);
        let y = rng.int(1, 19);
        let src = format!(
            "E: module (): [r: int];
             define r = max(abs({x}) mod {y}, min({x} div {y}, {y})) + (0 - {y});
             end E;"
        );
        let comp = compile(&src, CompileOptions::default()).expect("compiles");
        let out = execute(
            &comp,
            &Inputs::new(),
            &Sequential,
            RuntimeOptions::default(),
        )
        .expect("runs");
        let oracle = run_naive(&comp.module, &Inputs::new()).expect("oracle");
        assert_eq!(out.scalar("r"), oracle.scalar("r"), "case {case}");
        // And the C backend helpers implement the same euclidean semantics.
        if let Value::Int(v) = out.scalar("r") {
            let m = x.abs().rem_euclid(y);
            let d = x.div_euclid(y);
            let expected = m.max(d.min(y)) - y;
            assert_eq!(v, expected, "case {case}: x={x} y={y}");
        }
    }
}
