//! Property tests: windowed array mapping vs a full array, under the
//! sliding-access pattern the scheduler guarantees.

use proptest::prelude::*;
use ps_runtime::Value;

// The ndarray module is internal; exercise it through a generated PS
// program: a w-term recurrence forces a window of w, and the result must
// match the oracle for any coefficients.
use ps_core::{compile, execute, run_naive, CompileOptions, Inputs, RuntimeOptions, Sequential};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random linear recurrences of depth d: window = d+1 and the windowed
    /// scheduled run matches the (unwindowed) oracle exactly.
    #[test]
    fn windowed_recurrence_matches_oracle(
        depth in 1usize..4,
        coeffs in prop::collection::vec(1i64..=2, 3),
        n in 8i64..24,
    ) {
        // Growth bound: with coefficients <= 2 over <= 3 terms the dominant
        // root is < 3, so values stay below 3^24 << i64::MAX.
        let d = depth.min(coeffs.len());
        let mut inits = String::new();
        for p in 1..=d {
            inits.push_str(&format!("    a[{p}] = {p};\n"));
        }
        let terms: Vec<String> = (1..=d)
            .map(|o| format!("{} * a[K-{o}]", coeffs[o - 1]))
            .collect();
        let src = format!(
            "Rec: module (n: int): [y: int];
             type K = {lo} .. n;
             var a: array [1 .. n] of int;
             define
             {inits}
                 a[K] = {sum};
                 y = a[n];
             end Rec;",
            lo = d + 1,
            sum = terms.join(" + ")
        );
        let comp = compile(&src, CompileOptions::default()).expect("compiles");
        let a = comp.module.data_by_name("a").unwrap();
        prop_assert_eq!(comp.schedule.memory.window(a, 0), Some(d as i64 + 1));

        let inputs = Inputs::new().set_int("n", n);
        let scheduled = execute(
            &comp,
            &inputs,
            &Sequential,
            RuntimeOptions { check_writes: true },
        ).expect("windowed run");
        let oracle = run_naive(&comp.module, &inputs).expect("oracle");
        prop_assert_eq!(scheduled.scalar("y"), oracle.scalar("y"));
    }

    /// Integer semantics agree between the two interpreters on arbitrary
    /// expression shapes (div/mod/min/max/abs chains).
    #[test]
    fn int_expression_semantics_agree(x in -50i64..50, y in 1i64..20) {
        let src = format!(
            "E: module (): [r: int];
             define r = max(abs({x}) mod {y}, min({x} div {y}, {y})) + (0 - {y});
             end E;"
        );
        let comp = compile(&src, CompileOptions::default()).expect("compiles");
        let out = execute(&comp, &Inputs::new(), &Sequential, RuntimeOptions::default())
            .expect("runs");
        let oracle = run_naive(&comp.module, &Inputs::new()).expect("oracle");
        prop_assert_eq!(out.scalar("r"), oracle.scalar("r"));
        // And the C backend helpers implement the same euclidean semantics.
        if let Value::Int(v) = out.scalar("r") {
            let m = x.abs().rem_euclid(y);
            let d = x.div_euclid(y);
            let expected = m.max(d.min(y)) - y;
            prop_assert_eq!(v, expected);
        }
    }
}
